"""Parallel trial execution with an on-disk result cache.

Every trial in a campaign is an independent, seed-deterministic
simulation, so a figure's worth of repetitions is embarrassingly
parallel: :class:`TrialRunner` fans trials out over a
:class:`~concurrent.futures.ProcessPoolExecutor` (``workers > 1``) or
runs them in-process (``workers=1``, the default — byte-identical to
the historical serial path).

**Determinism contract.**  A trial is fully determined by its
``(TrialSetup, seed)`` pair; seeds are derived *before* any scheduling
decision (see :func:`repro.experiments.harness.run_trials`), so the
worker count can never change which simulations run or what they
produce — only how long the wall clock takes.  Results are returned in
submission order regardless of completion order.

**Caching.**  With a ``cache_dir``, each finished trial is written to a
:class:`~repro.experiments.resultstore.ResultStore` under
:func:`trial_key` — a stable hash of the setup's fields and the seed.
Re-running a figure (or resuming an interrupted campaign) loads hits
from the store and executes only the missing trials; a fully-cached
re-run executes zero.  ``use_cache=False`` ignores the store entirely
(neither reads nor writes).

Workers ship results back in the JSON wire form (the live trace holds
subscriber callables and cannot cross a process boundary), so results
produced by a pool worker — like results loaded from the cache — carry
a reconstructed :class:`~repro.analysis.traces.Trace` with identical
counters and records but no listeners.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.experiments.resultstore import (ResultStore, run_result_from_dict,
                                           run_result_to_dict)
from repro.mpichv.runtime import RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.experiments.harness import TrialSetup

#: bump to invalidate every existing cache entry (key derivation or
#: simulation semantics changed)
CACHE_VERSION = 9        # 9: causal event graph in the obs document
#                          and critpath_segments on verdicts (result
#                          format 8) — cached format-7 entries would
#                          silently lack the causal graph
#                          8: observability document on results
#                          (result format 7); TrialSetup.observe joins
#                          the key — observed and unobserved results
#                          are different wire documents
#                          7: engine-workers execution metadata on
#                          results (result format 6); engine_workers
#                          excluded from the key


def trial_key(setup: "TrialSetup", seed: int) -> str:
    """Stable cache key for one ``(setup, seed)`` trial.

    The key hashes the canonical JSON of every :class:`TrialSetup`
    field plus the seed and :data:`CACHE_VERSION`, so any change to the
    configuration — scale, scenario source, protocol, workload
    calibration, ... — lands in a different cache slot.  The one
    exception is ``engine_workers``: it changes how the simulation
    executes, never what it simulates (bit-identical history, guarded
    by ``tests/test_engine_workers_golden.py``), so every worker count
    shares one slot — a cached reference run satisfies a parallel
    request and vice versa.
    """
    setup_doc = dataclasses.asdict(setup)
    setup_doc.pop("engine_workers", None)
    doc = {
        "version": CACHE_VERSION,
        "seed": seed,
        "setup": setup_doc,
    }
    canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"),
                           default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of ``values`` (p in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (p / 100.0) * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)


@dataclass
class RunnerStats:
    """Where a campaign's trials came from, and what they cost.

    The wall-clock series here are the runner's *self-profiling* — they
    describe this machine and this run, never the simulation, so they
    are printed in campaign summaries and written to ``BENCH_*.json``
    artifacts but are deliberately absent from the deterministic result
    wire format (the ``wall_seconds`` lesson: see resultstore).
    """

    executed: int = 0
    cache_hits: int = 0
    #: wall seconds per executed trial (submission order)
    exec_walls: List[float] = field(default_factory=list)
    #: wall seconds per cache hit (store read + deserialize)
    hit_walls: List[float] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.executed + self.cache_hits

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def snapshot(self) -> Tuple[int, int]:
        return (self.executed, self.cache_hits)

    def note_executed(self, wall: float) -> None:
        self.executed += 1
        self.exec_walls.append(wall)

    def note_hit(self, wall: float) -> None:
        self.cache_hits += 1
        self.hit_walls.append(wall)

    def wall_percentiles(self) -> Dict[str, float]:
        """p50/p90/p99 wall seconds of the executed trials."""
        return {name: round(percentile(self.exec_walls, p), 6)
                for name, p in (("p50", 50), ("p90", 90), ("p99", 99))}

    @property
    def mean_hit_latency_ms(self) -> float:
        if not self.hit_walls:
            return 0.0
        return 1000.0 * sum(self.hit_walls) / len(self.hit_walls)

    def describe(self) -> str:
        """One summary line for campaign/sweep footers."""
        parts = [f"{self.executed} executed, {self.cache_hits} cached "
                 f"({100.0 * self.hit_rate:.0f}% hits)"]
        if self.exec_walls:
            pct = self.wall_percentiles()
            parts.append(f"trial wall p50/p90/p99 = {pct['p50']:.2f}/"
                         f"{pct['p90']:.2f}/{pct['p99']:.2f}s")
        if self.hit_walls:
            parts.append(f"cache-hit latency {self.mean_hit_latency_ms:.1f}ms")
        return "; ".join(parts)

    def to_doc(self) -> Dict[str, object]:
        """JSON row for ``BENCH_*.json`` artifacts."""
        return {
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "hit_rate": round(self.hit_rate, 4),
            "wall_percentiles": self.wall_percentiles(),
            "mean_hit_latency_ms": round(self.mean_hit_latency_ms, 3),
        }


def _execute_trial_wire(setup: "TrialSetup", seed: int) -> Tuple[dict, float]:
    """Pool worker entry point: run one trial, return its wire form
    plus the worker-side wall seconds (self-profiling only — the wire
    doc itself never carries wall clock)."""
    start = time.perf_counter()
    doc = run_result_to_dict(setup.run_one(seed))
    return doc, time.perf_counter() - start


class TrialRunner:
    """Executes batches of ``(TrialSetup, seed)`` trials.

    Parameters
    ----------
    workers:
        Process-pool width.  ``1`` (default) runs every trial
        in-process, serially, preserving the pre-runner behaviour
        exactly (live traces included).
    cache_dir:
        Root of the on-disk result store; ``None`` disables caching.
    use_cache:
        ``False`` makes the runner ignore ``cache_dir`` entirely —
        nothing is read from or written to the store.
    engine_workers:
        When > 1, every submitted trial's setup is rewritten to run
        its *simulation* over that many engine partitions (see
        ``TrialSetup.engine_workers`` and docs/parallel-engine.md).
        Orthogonal to ``workers``: that knob parallelizes *across*
        trials, this one partitions *within* each.  Never part of the
        cache key — the simulated results are bit-identical.
    """

    def __init__(self, workers: int = 1,
                 cache_dir: Optional[str] = None,
                 use_cache: bool = True,
                 engine_workers: int = 1,
                 trace_out: Optional[str] = None,
                 obs_report: Optional[str] = None):
        self.workers = max(1, int(workers))
        self.engine_workers = max(1, int(engine_workers))
        self.store: Optional[ResultStore] = (
            ResultStore(cache_dir) if (cache_dir and use_cache) else None)
        self.stats = RunnerStats()
        #: Chrome-trace export path (``--trace-out``); the first
        #: observed result — preferring a faulted one — is written once
        self.trace_out = trace_out
        self._trace_written = False
        #: campaign observability rollup directory (``--obs-report``);
        #: rewritten after every batch over all observed results so far
        self.obs_report = obs_report
        self._obs_docs: List[dict] = []

    def run_jobs(self, jobs: Sequence[Tuple["TrialSetup", int]]
                 ) -> List[RunResult]:
        """Run (or load) every job; results align with ``jobs`` order."""
        if self.engine_workers > 1:
            jobs = [(dataclasses.replace(setup,
                                         engine_workers=self.engine_workers),
                     seed)
                    for setup, seed in jobs]
        results: List[Optional[RunResult]] = [None] * len(jobs)
        keys: List[Optional[str]] = [None] * len(jobs)
        pending: List[int] = []
        for i, (setup, seed) in enumerate(jobs):
            if self.store is not None:
                keys[i] = trial_key(setup, seed)
                start = time.perf_counter()
                cached = self.store.get(keys[i])
                if cached is not None:
                    results[i] = cached
                    self.stats.note_hit(time.perf_counter() - start)
                    continue
            pending.append(i)

        if pending and self.workers == 1:
            for i in pending:
                setup, seed = jobs[i]
                start = time.perf_counter()
                result = setup.run_one(seed)
                self.stats.note_executed(time.perf_counter() - start)
                if self.store is not None:
                    self.store.put(keys[i], result)
                results[i] = result
        elif pending:
            self._run_pool(jobs, pending, keys, results)
        self._maybe_export_trace(results)
        self._maybe_export_obs_report(results)
        return results  # type: ignore[return-value]  # every slot filled

    def _run_pool(self, jobs, pending, keys, results) -> None:
        width = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=width) as pool:
            futures = {
                pool.submit(_execute_trial_wire, jobs[i][0], jobs[i][1]): i
                for i in pending}
            for future in as_completed(futures):
                i = futures[future]
                doc, wall = future.result()
                self.stats.note_executed(wall)
                if self.store is not None:
                    self.store.put_dict(keys[i], doc)
                results[i] = run_result_from_dict(doc)

    def _maybe_export_trace(self, results: Sequence[Optional[RunResult]]
                            ) -> None:
        """Write the ``--trace-out`` Chrome trace (once per runner).

        Picks the first observed result with a recovery (a faulted
        trial is what the trace is *for*), falling back to the first
        observed one — both deterministic in submission order, so the
        exported bytes are identical no matter how the batch executed.
        """
        if self.trace_out is None or self._trace_written:
            return
        observed = [r for r in results if r is not None and r.obs]
        if not observed:
            return
        pick = next((r for r in observed if r.restarts), observed[0])
        from repro.obs import write_chrome_trace
        write_chrome_trace(self.trace_out, pick.obs)
        self._trace_written = True
        print(f"wrote Chrome trace to {self.trace_out} "
              f"(open in chrome://tracing or ui.perfetto.dev)")

    def _maybe_export_obs_report(self, results: Sequence[Optional[RunResult]]
                                 ) -> None:
        """Rewrite the ``--obs-report`` campaign rollup (every batch).

        The rollup accumulates every observed result the runner has
        produced so far, in submission order — the report after the
        final batch covers the whole campaign, and the bytes are
        identical no matter how the batches executed.
        """
        if self.obs_report is None:
            return
        self._obs_docs.extend(r.obs for r in results
                              if r is not None and r.obs)
        if not self._obs_docs:
            return
        from repro.obs.report import write_obs_report
        paths = write_obs_report(self.obs_report, self._obs_docs)
        print(f"wrote campaign obs report to {paths['html']} "
              f"({len(self._obs_docs)} observed trials)")


# -- CLI plumbing shared by every experiment driver --------------------------

def add_runner_arguments(parser) -> None:
    """Attach the shared ``--workers`` / ``--cache-dir`` / ``--no-cache``
    flags to an :mod:`argparse` parser."""
    group = parser.add_argument_group("trial execution")
    group.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run trials over N worker processes (default: 1, serial)")
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache per-trial results under DIR; re-runs and resumed "
             "campaigns skip already-computed trials")
    group.add_argument(
        "--no-cache", action="store_true",
        help="ignore the cache entirely (neither read nor write)")
    group.add_argument(
        "--engine-workers", type=int, default=1, metavar="W",
        help="partition each trial's simulation over W engine "
             "partitions (default: 1, the single-engine reference; "
             "results are bit-identical at every W — see "
             "docs/parallel-engine.md)")
    group.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="export a Chrome-trace/Perfetto JSON of the first "
             "observed (preferring faulted) trial to FILE — open in "
             "chrome://tracing or ui.perfetto.dev (see "
             "docs/observability.md)")
    group.add_argument(
        "--obs-report", default=None, metavar="DIR",
        help="write a campaign-level observability rollup under DIR: "
             "an OpenMetrics text exposition (metrics.txt) and a "
             "static HTML report (index.html) aggregated over every "
             "observed trial (see docs/observability.md)")


def runner_from_args(args) -> TrialRunner:
    """Build the :class:`TrialRunner` described by parsed CLI args."""
    return TrialRunner(workers=getattr(args, "workers", 1),
                       cache_dir=getattr(args, "cache_dir", None),
                       use_cache=not getattr(args, "no_cache", False),
                       engine_workers=getattr(args, "engine_workers", 1),
                       trace_out=getattr(args, "trace_out", None),
                       obs_report=getattr(args, "obs_report", None))
