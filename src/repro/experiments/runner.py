"""Parallel trial execution with an on-disk result cache.

Every trial in a campaign is an independent, seed-deterministic
simulation, so a figure's worth of repetitions is embarrassingly
parallel: :class:`TrialRunner` fans trials out over a
:class:`~concurrent.futures.ProcessPoolExecutor` (``workers > 1``) or
runs them in-process (``workers=1``, the default — byte-identical to
the historical serial path).

**Determinism contract.**  A trial is fully determined by its
``(TrialSetup, seed)`` pair; seeds are derived *before* any scheduling
decision (see :func:`repro.experiments.harness.run_trials`), so the
worker count can never change which simulations run or what they
produce — only how long the wall clock takes.  Results are returned in
submission order regardless of completion order.

**Caching.**  With a ``cache_dir``, each finished trial is written to a
:class:`~repro.experiments.resultstore.ResultStore` under
:func:`trial_key` — a stable hash of the setup's fields and the seed.
Re-running a figure (or resuming an interrupted campaign) loads hits
from the store and executes only the missing trials; a fully-cached
re-run executes zero.  ``use_cache=False`` ignores the store entirely
(neither reads nor writes).

Workers ship results back in the JSON wire form (the live trace holds
subscriber callables and cannot cross a process boundary), so results
produced by a pool worker — like results loaded from the cache — carry
a reconstructed :class:`~repro.analysis.traces.Trace` with identical
counters and records but no listeners.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.experiments.resultstore import (ResultStore, run_result_from_dict,
                                           run_result_to_dict)
from repro.mpichv.runtime import RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.experiments.harness import TrialSetup

#: bump to invalidate every existing cache entry (key derivation or
#: simulation semantics changed)
CACHE_VERSION = 7        # 7: engine-workers execution metadata on
#                          results (result format 6); engine_workers
#                          excluded from the key


def trial_key(setup: "TrialSetup", seed: int) -> str:
    """Stable cache key for one ``(setup, seed)`` trial.

    The key hashes the canonical JSON of every :class:`TrialSetup`
    field plus the seed and :data:`CACHE_VERSION`, so any change to the
    configuration — scale, scenario source, protocol, workload
    calibration, ... — lands in a different cache slot.  The one
    exception is ``engine_workers``: it changes how the simulation
    executes, never what it simulates (bit-identical history, guarded
    by ``tests/test_engine_workers_golden.py``), so every worker count
    shares one slot — a cached reference run satisfies a parallel
    request and vice versa.
    """
    setup_doc = dataclasses.asdict(setup)
    setup_doc.pop("engine_workers", None)
    doc = {
        "version": CACHE_VERSION,
        "seed": seed,
        "setup": setup_doc,
    }
    canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"),
                           default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class RunnerStats:
    """Where a campaign's trials came from."""

    executed: int = 0
    cache_hits: int = 0

    @property
    def total(self) -> int:
        return self.executed + self.cache_hits

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def snapshot(self) -> Tuple[int, int]:
        return (self.executed, self.cache_hits)


def _execute_trial_wire(setup: "TrialSetup", seed: int) -> dict:
    """Pool worker entry point: run one trial, return its wire form."""
    return run_result_to_dict(setup.run_one(seed))


class TrialRunner:
    """Executes batches of ``(TrialSetup, seed)`` trials.

    Parameters
    ----------
    workers:
        Process-pool width.  ``1`` (default) runs every trial
        in-process, serially, preserving the pre-runner behaviour
        exactly (live traces included).
    cache_dir:
        Root of the on-disk result store; ``None`` disables caching.
    use_cache:
        ``False`` makes the runner ignore ``cache_dir`` entirely —
        nothing is read from or written to the store.
    engine_workers:
        When > 1, every submitted trial's setup is rewritten to run
        its *simulation* over that many engine partitions (see
        ``TrialSetup.engine_workers`` and docs/parallel-engine.md).
        Orthogonal to ``workers``: that knob parallelizes *across*
        trials, this one partitions *within* each.  Never part of the
        cache key — the simulated results are bit-identical.
    """

    def __init__(self, workers: int = 1,
                 cache_dir: Optional[str] = None,
                 use_cache: bool = True,
                 engine_workers: int = 1):
        self.workers = max(1, int(workers))
        self.engine_workers = max(1, int(engine_workers))
        self.store: Optional[ResultStore] = (
            ResultStore(cache_dir) if (cache_dir and use_cache) else None)
        self.stats = RunnerStats()

    def run_jobs(self, jobs: Sequence[Tuple["TrialSetup", int]]
                 ) -> List[RunResult]:
        """Run (or load) every job; results align with ``jobs`` order."""
        if self.engine_workers > 1:
            jobs = [(dataclasses.replace(setup,
                                         engine_workers=self.engine_workers),
                     seed)
                    for setup, seed in jobs]
        results: List[Optional[RunResult]] = [None] * len(jobs)
        keys: List[Optional[str]] = [None] * len(jobs)
        pending: List[int] = []
        for i, (setup, seed) in enumerate(jobs):
            if self.store is not None:
                keys[i] = trial_key(setup, seed)
                cached = self.store.get(keys[i])
                if cached is not None:
                    results[i] = cached
                    self.stats.cache_hits += 1
                    continue
            pending.append(i)

        if pending and self.workers == 1:
            for i in pending:
                setup, seed = jobs[i]
                result = setup.run_one(seed)
                self.stats.executed += 1
                if self.store is not None:
                    self.store.put(keys[i], result)
                results[i] = result
        elif pending:
            self._run_pool(jobs, pending, keys, results)
        return results  # type: ignore[return-value]  # every slot filled

    def _run_pool(self, jobs, pending, keys, results) -> None:
        width = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=width) as pool:
            futures = {
                pool.submit(_execute_trial_wire, jobs[i][0], jobs[i][1]): i
                for i in pending}
            for future in as_completed(futures):
                i = futures[future]
                doc = future.result()
                self.stats.executed += 1
                if self.store is not None:
                    self.store.put_dict(keys[i], doc)
                results[i] = run_result_from_dict(doc)


# -- CLI plumbing shared by every experiment driver --------------------------

def add_runner_arguments(parser) -> None:
    """Attach the shared ``--workers`` / ``--cache-dir`` / ``--no-cache``
    flags to an :mod:`argparse` parser."""
    group = parser.add_argument_group("trial execution")
    group.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run trials over N worker processes (default: 1, serial)")
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache per-trial results under DIR; re-runs and resumed "
             "campaigns skip already-computed trials")
    group.add_argument(
        "--no-cache", action="store_true",
        help="ignore the cache entirely (neither read nor write)")
    group.add_argument(
        "--engine-workers", type=int, default=1, metavar="W",
        help="partition each trial's simulation over W engine "
             "partitions (default: 1, the single-engine reference; "
             "results are bit-identical at every W — see "
             "docs/parallel-engine.md)")


def runner_from_args(args) -> TrialRunner:
    """Build the :class:`TrialRunner` described by parsed CLI args."""
    return TrialRunner(workers=getattr(args, "workers", 1),
                       cache_dir=getattr(args, "cache_dir", None),
                       use_cache=not getattr(args, "no_cache", False),
                       engine_workers=getattr(args, "engine_workers", 1))
