"""§2.1 table — criteria comparison of distributed fault injectors.

The paper's qualitative matrix comparing NFTAPE, LOKI and FAIL-FCI on
seven criteria.  We regenerate it from a small structured registry so
the benchmark target for this table exists like any other, and so the
claims about FAIL-FCI can be cross-checked against what this repository
actually implements (see ``SUPPORT_EVIDENCE``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

CRITERIA: Tuple[str, ...] = (
    "High Expressiveness",
    "High-level Language",
    "Low Intrusion",
    "Probabilistic Scenario",
    "No Code Modification",
    "Scalability",
    "Global-state Injection",
)


@dataclass(frozen=True)
class ToolProfile:
    name: str
    citation: str
    supports: Dict[str, bool]


TOOLS: Tuple[ToolProfile, ...] = (
    ToolProfile(
        name="NFTAPE",
        citation="[Sa00]",
        supports={
            "High Expressiveness": True,
            "High-level Language": False,
            "Low Intrusion": True,
            "Probabilistic Scenario": True,
            "No Code Modification": False,
            "Scalability": False,
            "Global-state Injection": True,
        }),
    ToolProfile(
        name="LOKI",
        citation="[CLCS00]",
        supports={
            "High Expressiveness": False,
            "High-level Language": False,
            "Low Intrusion": True,
            "Probabilistic Scenario": False,
            "No Code Modification": False,
            "Scalability": True,
            "Global-state Injection": True,
        }),
    ToolProfile(
        name="FAIL-FCI",
        citation="[HT05]",
        supports={
            "High Expressiveness": True,
            "High-level Language": True,
            "Low Intrusion": True,
            "Probabilistic Scenario": True,
            "No Code Modification": True,
            "Scalability": True,
            "Global-state Injection": True,
        }),
)

#: For FAIL-FCI, where this repository demonstrates each criterion.
SUPPORT_EVIDENCE: Dict[str, str] = {
    "High Expressiveness": "state machines + timers + messages + "
                           "breakpoints (repro.fail.lang)",
    "High-level Language": "the FAIL DSL (repro.fail.lang.parser)",
    "Low Intrusion": "per-event handling cost only "
                     "(TimingModel.fail_event_handling)",
    "Probabilistic Scenario": "FAIL_RANDOM (repro.fail.machine.eval_expr)",
    "No Code Modification": "registration interface / spawn listener "
                            "(repro.fail.scenario.ScenarioDeployment)",
    "Scalability": "one daemon per machine, O(1) coordinator messages "
                   "per fault (repro.fail.bus)",
    "Global-state Injection": "onload counting + before(fn) breakpoints "
                              "(Figs. 8/10 scenarios)",
}


def build_table() -> List[List[str]]:
    """The table as rows of strings, paper layout."""
    header = ["Criteria"] + [t.name for t in TOOLS]
    rows = [header]
    for criterion in CRITERIA:
        row = [criterion]
        for tool in TOOLS:
            row.append("yes" if tool.supports[criterion] else "no")
        rows.append(row)
    return rows


def render() -> str:
    rows = build_table()
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = ["== Table (§2.1) — fault injection tool comparison =="]
    for idx, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if idx == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI
    import argparse

    from repro.experiments.runner import add_runner_arguments

    parser = argparse.ArgumentParser(description=__doc__)
    # The table is regenerated from the registry — no trials run — but
    # every `python -m repro` subcommand accepts the shared runner
    # flags so campaign scripts can pass them uniformly.
    add_runner_arguments(parser)
    parser.parse_args()
    print(render())
    print()
    print("FAIL-FCI evidence in this repository:")
    for criterion, where in SUPPORT_EVIDENCE.items():
        print(f"  {criterion}: {where}")


if __name__ == "__main__":  # pragma: no cover
    main()
