"""Experiment drivers: one module per table/figure of the paper.

* :mod:`repro.experiments.harness` — run/aggregate machinery shared by
  all experiments (timeout, repetition, outcome percentages);
* :mod:`repro.experiments.runner` — parallel trial execution
  (:class:`TrialRunner`) with an on-disk result cache;
* :mod:`repro.experiments.resultstore` — JSON round-trip and storage
  of per-trial results;
* :mod:`repro.experiments.fig5_frequency` — impact of fault frequency;
* :mod:`repro.experiments.fig6_scale` — impact of scale;
* :mod:`repro.experiments.fig7_simultaneous` — simultaneous faults;
* :mod:`repro.experiments.fig9_synchronized` — faults synchronized on
  the recovery wave (onload counting);
* :mod:`repro.experiments.fig11_state_sync` — faults synchronized on
  MPI state (breakpoint at ``localMPI_setCommand``);
* :mod:`repro.experiments.table1_tools` — the §2.1 qualitative
  criteria matrix;
* :mod:`repro.experiments.net_sensitivity` — protocol × topology ×
  oversubscription sweep over the :mod:`repro.netmodel` fabrics;
* :mod:`repro.experiments.scale_sweep` — protocol × ranks (up to 512)
  × checkpoint-server shards, past the paper's Fig. 6 range.

Every module exposes ``run_experiment(...) -> ExperimentResult`` and a
``main()`` CLI that prints the regenerated table.
"""

from repro.experiments.harness import (
    ExperimentResult,
    ExperimentRow,
    TrialSetup,
    run_trials,
    trial_seed,
)
from repro.experiments.runner import RunnerStats, TrialRunner, trial_key

__all__ = [
    "ExperimentResult",
    "ExperimentRow",
    "RunnerStats",
    "TrialRunner",
    "TrialSetup",
    "run_trials",
    "trial_key",
    "trial_seed",
]
