"""``python -m repro trace-diff`` — align two trials' observability.

Takes two JSON files — full result documents (``repro timeline
--obs-out``) or bare ``obs`` documents — and prints the deterministic
delta table: span rollups, epoch-aligned recovery critical paths, and
the causal wire rollup.  See :mod:`repro.analysis.tracediff`.

Example::

    python -m repro timeline --kill 45 --obs-out a.json
    python -m repro timeline --partition 45:0 --heal-after 20 --obs-out b.json
    python -m repro trace-diff a.json b.json
"""

from __future__ import annotations

import argparse
import os

from repro.analysis.tracediff import load_obs_doc, trace_diff_text


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("a", help="first trial (result or obs JSON)")
    parser.add_argument("b", help="second trial (result or obs JSON)")
    parser.add_argument("--label-a", default=None,
                        help="display label for the first trial "
                             "(default: its file name)")
    parser.add_argument("--label-b", default=None,
                        help="display label for the second trial "
                             "(default: its file name)")
    args = parser.parse_args()

    obs_a, desc_a = load_obs_doc(args.a)
    obs_b, desc_b = load_obs_doc(args.b)
    label_a = args.label_a or os.path.basename(args.a)
    label_b = args.label_b or os.path.basename(args.b)
    print(f"{label_a}: {desc_a}")
    print(f"{label_b}: {desc_b}")
    print()
    print(trace_diff_text(obs_a, obs_b, label_a=label_a, label_b=label_b))


if __name__ == "__main__":  # pragma: no cover
    main()
