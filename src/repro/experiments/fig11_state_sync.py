"""Figure 11 — synchronized faults depending on MPI state.

Paper setup (§5.3, final experiment): scenarios of Fig. 10.  As in
Fig. 9, but every recovery-wave relaunch is *stopped* at load; P1
designates the first reporter for a crash and releases the others with
``nocrash``.  The designated daemon is resumed with a breakpoint armed
``before(localMPI_setCommand)`` — i.e. it is killed right after the
dispatcher completed the argument exchange and considers it running.

Expected shape: **every run freezes at every scale** (100 % buggy) —
the experiment that pinpointed the dispatcher bug.  With the fixed
dispatcher (``bug_compat=False``), every run terminates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.experiments.harness import ExperimentResult, TrialSetup, run_trials
from repro.experiments.fig5_frequency import setup_for_period
from repro.experiments.runner import (TrialRunner, add_runner_arguments,
                                      runner_from_args)
from repro.fail import builtin_scenarios as bs

SCALES: Sequence[int] = (25, 36, 49, 64)
REPS = 6


def setup_for_scale(scale: int, n_spares: int = 4, bug_compat: bool = True,
                    **workload_kwargs) -> TrialSetup:
    return TrialSetup(
        n_procs=scale, n_machines=scale + n_spares,
        scenario_source=bs.FIG10A_MASTER + bs.FIG10B_NODE_DAEMON,
        master_daemon="ADV1", node_daemon="ADVnodes",
        bug_compat=bug_compat,
        **workload_kwargs)


def run_experiment(reps: int = REPS,
                   scales: Sequence[int] = SCALES,
                   bug_compat: bool = True,
                   include_baseline: bool = True,
                   base_seed: int = 11000,
                   runner: Optional[TrialRunner] = None,
                   **workload_kwargs) -> ExperimentResult:
    configs: List[Tuple[int, bool]] = []
    labels: List[str] = []
    for scale in scales:
        if include_baseline:
            configs.append((scale, False))
            labels.append(f"BT {scale} no faults")
        configs.append((scale, True))
        labels.append(f"BT {scale} state-sync")

    def setup_for(config: Tuple[int, bool]) -> TrialSetup:
        scale, faulty = config
        if not faulty:
            return setup_for_period(None, n_procs=scale,
                                    n_machines=scale + 4, **workload_kwargs)
        return setup_for_scale(scale, bug_compat=bug_compat, **workload_kwargs)

    return run_trials(
        setup_for=setup_for, configs=configs, labels=labels, reps=reps,
        name=("Fig. 11 — synchronized faults on MPI state "
              "(breakpoint at localMPI_setCommand)"),
        base_seed=base_seed, runner=runner)


def main() -> None:  # pragma: no cover - CLI
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=REPS)
    parser.add_argument("--fixed", action="store_true")
    add_runner_arguments(parser)
    args = parser.parse_args()
    print(run_experiment(reps=args.reps, bug_compat=not args.fixed,
                         runner=runner_from_args(args)).render())


if __name__ == "__main__":  # pragma: no cover
    main()
