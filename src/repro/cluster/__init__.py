"""Simulated cluster substrate: nodes, unix processes, TCP-like network.

This package replaces the paper's Grid Explorer testbed.  The key
behaviour preserved (see DESIGN.md §2) is the failure-detection
semantic the paper relies on: *killing a task immediately breaks its
TCP connections*, so a peer blocked on a receive observes the closure
right away.
"""

from repro.cluster.network import (
    Address,
    ConnectionClosed,
    ConnectionRefused,
    ListenSocket,
    Network,
    Socket,
)
from repro.cluster.unixproc import ProcState, UnixProcess
from repro.cluster.node import Node
from repro.cluster.cluster import Cluster

__all__ = [
    "Address",
    "Network",
    "Socket",
    "ListenSocket",
    "ConnectionClosed",
    "ConnectionRefused",
    "UnixProcess",
    "ProcState",
    "Node",
    "Cluster",
]
