"""A cluster node: a named machine hosting unix processes.

Nodes expose spawn/kill and *lifecycle listeners* — the hook the
FAIL-MPI daemon uses to observe processes starting (``onload``) and
ending (``onexit`` / ``onerror``) on its machine, per §4 of the paper.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from repro.cluster.network import Address
from repro.cluster.unixproc import UnixProcess


class Node:
    """One machine of the simulated cluster."""

    def __init__(self, cluster, name: str, index: int):
        self.cluster = cluster
        self.engine = cluster.engine
        self.name = name
        self.index = index
        self.procs: List[UnixProcess] = []
        #: every process ever spawned here, dead ones included —
        #: consumed only by teardown (VclRuntime.dispose), which must
        #: break the cycles of processes long gone from :attr:`procs`
        self._all_procs: List[UnixProcess] = []
        self._spawn_listeners: List[Callable[[UnixProcess], None]] = []

    # -- process management ------------------------------------------------
    def spawn(self, name: str, main: Callable[[UnixProcess], Generator],
              tags: Optional[Dict[str, Any]] = None,
              notify: bool = True) -> UnixProcess:
        """Start a process on this node.

        ``notify=False`` spawns silently (used for infrastructure
        processes like the FAIL daemons themselves, which must not
        trigger their own ``onload``).
        """
        proc = UnixProcess(self, name, main, tags=tags)
        self.procs.append(proc)
        self._all_procs.append(proc)
        self.engine.log("proc_launch", pid=proc.pid, name=name, node=self.name)
        if notify:
            for listener in list(self._spawn_listeners):
                listener(proc)
        return proc

    def _proc_gone(self, proc: UnixProcess) -> None:
        if proc in self.procs:
            self.procs.remove(proc)

    def on_spawn(self, listener: Callable[[UnixProcess], None]) -> None:
        """Observe future spawns on this node (FAIL ``onload``)."""
        self._spawn_listeners.append(listener)

    def running(self, name_prefix: Optional[str] = None) -> List[UnixProcess]:
        """Live processes, optionally filtered by program-name prefix."""
        out = [p for p in self.procs if p.state.alive]
        if name_prefix is not None:
            out = [p for p in out if p.name.startswith(name_prefix)]
        return out

    def kill_all(self) -> None:
        """Power-off analogue: kill everything on the node."""
        for proc in list(self.procs):
            proc.kill()

    # -- network shorthand ----------------------------------------------------
    def addr(self, port: int) -> Address:
        return Address(self.name, port)

    def listen(self, port: int, owner: Optional[UnixProcess] = None):
        return self.cluster.network.listen(self.addr(port), owner=owner)

    def connect(self, addr: Address, owner: Optional[UnixProcess] = None):
        return self.cluster.network.connect(self.name, addr, owner=owner)

    def dispose(self) -> None:
        """Teardown-only cycle breaking of every process ever spawned
        here, dead ones included (see ``VclRuntime.dispose``)."""
        for proc in self._all_procs:
            proc.dispose()
        self._all_procs.clear()
        self.procs.clear()
        self._spawn_listeners.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.name} procs={len(self.procs)}>"
