"""Cluster orchestration: the set of nodes plus shared services.

Also provides the ssh-like remote spawn used by self-deploying
middleware (the dispatcher launches remote daemons through
:meth:`Cluster.remote_spawn`, paying a connection-setup latency, as
MPICH-V does with ssh).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from repro.simkernel.engine import Engine
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.unixproc import UnixProcess

#: one-off cost of an ssh-style remote launch (connection + exec)
SSH_LATENCY = 0.05


class Cluster:
    """A named set of :class:`Node` machines sharing one network."""

    def __init__(self, engine: Engine, n_nodes: int,
                 latency: Optional[float] = None,
                 bandwidth: Optional[float] = None,
                 name_prefix: str = "node",
                 topology=None):
        if n_nodes <= 0:
            raise ValueError("cluster needs at least one node")
        self.engine = engine
        kwargs: Dict[str, Any] = {}
        if latency is not None:
            kwargs["latency"] = latency
        if bandwidth is not None:
            kwargs["bandwidth"] = bandwidth
        if topology is not None:
            kwargs["topology"] = topology
        self.network = Network(engine, **kwargs)
        self.nodes: List[Node] = [
            Node(self, f"{name_prefix}{i}", i) for i in range(n_nodes)
        ]
        self._by_name: Dict[str, Node] = {n.name: n for n in self.nodes}
        # Node-creation order pins the fabric's host (rack) assignment.
        for node in self.nodes:
            self.network.register_host(node.name)
        self._pid_counter = 0

    def add_node(self, name: str) -> Node:
        """Append an extra named node (e.g. dedicated service machines)."""
        if name in self._by_name:
            raise ValueError(f"node name {name!r} already exists")
        node = Node(self, name, len(self.nodes))
        self.nodes.append(node)
        self._by_name[name] = node
        self.network.register_host(name)
        return node

    def next_pid(self) -> int:
        self._pid_counter += 1
        return self._pid_counter

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, key) -> Node:
        """Look up a node by index or name."""
        if isinstance(key, int):
            return self.nodes[key]
        return self._by_name[key]

    def remote_spawn(self, node_key, name: str,
                     main: Callable[[UnixProcess], Generator],
                     tags: Optional[Dict[str, Any]] = None,
                     notify: bool = True,
                     done: Optional[Callable[[UnixProcess], None]] = None) -> None:
        """ssh-like launch: spawn ``name`` on ``node_key`` after
        :data:`SSH_LATENCY`; optionally call ``done(proc)`` once started."""
        node = self.node(node_key)

        def _launch() -> None:
            proc = node.spawn(name, main, tags=tags, notify=notify)
            if done is not None:
                done(proc)

        self.engine.call_later(SSH_LATENCY, _launch)

    def all_procs(self, name_prefix: Optional[str] = None) -> List[UnixProcess]:
        out: List[UnixProcess] = []
        for node in self.nodes:
            out.extend(node.running(name_prefix))
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Cluster nodes={len(self.nodes)}>"
