"""A TCP-like network model over a pluggable fabric.

Characteristics modelled (and why):

* **per-connection FIFO** with delivery time computed by the
  deployment's fabric model (:mod:`repro.netmodel`).  The default
  ``uniform`` fabric keeps the historical arithmetic
  ``max(prev_arrival, now + latency + size/bandwidth)`` bit for bit —
  messages on a connection never reorder, and large transfers
  (checkpoint images) take size-proportional time, which drives the
  paper's Fig. 6 observation about 25-node checkpoints being slower.
  Non-uniform fabrics (``star``, ``twotier``) additionally queue on
  shared per-link pipes — uplink contention and core oversubscription;
* **closure notification** — closing either end (explicitly or because
  the owning process was killed) closes the peer's receive stream after
  one path latency, so a blocked ``recv`` fails with
  :class:`ConnectionClosed`.  This is exactly the failure-detection
  channel MPICH-V's dispatcher uses ("a failure is assumed after any
  unexpected socket closure");
* **connection refusal** when nothing listens on the target address;
* **partitions and link cuts** — :meth:`Network.cut_link`,
  :meth:`Network.isolate`, :meth:`Network.partition` and
  :meth:`Network.heal` mutate reachability at runtime.  Packets into a
  cut vanish; established connections spanning a cut are severed after
  one path latency (both receive streams fail with
  :class:`ConnectionClosed`, indistinguishable from peer death — the
  *false suspicion* adversary); a connection attempt across a cut is
  refused after the round trip.  Healing restores reachability for
  new connections but never resurrects severed ones — and a heal that
  lands before the severance notification does (within one latency)
  leaves the connection untouched, so partitions can race the failure
  detector.

The paper's experiments kill whole tasks, never the network; the
uniform no-partition default reproduces that regime exactly, while the
fault-injection layer (``partition``/``heal`` FAIL actions) opens the
partition fault class the paper leaves out.
"""

from __future__ import annotations

from typing import (Any, Dict, FrozenSet, NamedTuple, Optional, Sequence,
                    Set, Tuple)

from repro.netmodel import (DEFAULT_BANDWIDTH, DEFAULT_LATENCY, build_fabric)
from repro.simkernel.engine import Engine
from repro.simkernel.events import Event
from repro.simkernel.parallel import LookaheadViolation
from repro.simkernel.store import Store, StoreClosed


class Address(NamedTuple):
    """A (host, port) endpoint address."""

    host: str
    port: int

    def __str__(self) -> str:  # pragma: no cover - cosmetics
        return f"{self.host}:{self.port}"


class ConnectionClosed(Exception):
    """The peer endpoint closed (or its process died)."""


class ConnectionRefused(Exception):
    """No listener at the target address (or the path is cut)."""


DEFAULT_MSG_SIZE = 1024         # bytes, when a message has no size hint


def _msg_size(msg: Any, size: Optional[int]) -> int:
    if size is not None:
        return size
    hinted = getattr(msg, "size", None)
    if isinstance(hinted, (int, float)) and hinted >= 0:
        return int(hinted)
    return DEFAULT_MSG_SIZE


class Network:
    """The fabric connecting all nodes of the simulated cluster."""

    def __init__(self, engine: Engine,
                 latency: float = DEFAULT_LATENCY,
                 bandwidth: float = DEFAULT_BANDWIDTH,
                 topology=None):
        if latency < 0 or bandwidth <= 0:
            raise ValueError("latency must be >=0 and bandwidth >0")
        self.engine = engine
        self.fabric = build_fabric(topology, latency, bandwidth)
        #: resolved base parameters (a TopologySpec may override the args)
        self.latency = self.fabric.latency
        self.bandwidth = self.fabric.bandwidth
        self._listeners: Dict[Address, "ListenSocket"] = {}
        #: monotone id source for connections (stable trace labels)
        self._next_conn_id = 1
        self.bytes_sent = 0
        self.messages_sent = 0
        #: uniform fabric -> the hot path never consults the fabric
        self._fast_uniform = self.fabric.is_uniform
        #: live connection endpoints (for partition severing); an
        #: insertion-ordered dict-as-set — severance must scan
        #: connections in creation order or same-instant closure
        #: notifications land in address-dependent (nondeterministic)
        #: tie-break order
        self._sockets: Dict["Socket", None] = {}
        #: every endpoint/listener ever created, closed ones included —
        #: consumed only by teardown (VclRuntime.dispose), which must
        #: break the ``_peer`` cycles of sockets long forgotten here
        self._all_sockets: List["Socket"] = []
        self._all_listeners: List["ListenSocket"] = []
        #: hosts on the isolated side of an accumulated partition
        self._isolated: Set[str] = set()
        #: explicitly cut host pairs
        self._cut_pairs: Set[FrozenSet[str]] = set()
        # -- engine-partition accounting (None unless the runtime runs
        #    in engine_workers mode; see set_partition_plan) ----------
        self._host_group: Optional[Dict[str, int]] = None
        self._group_lookahead = 0.0
        self._window = 0
        self._channel_last_window: Dict[Tuple[int, int], int] = {}
        self.cross_messages = 0
        self.cross_bytes = 0
        self.payload_windows = 0
        self.n_groups = 0

    # -- topology ------------------------------------------------------------
    def register_host(self, host: str) -> None:
        """Declare a host to the fabric (rack assignment order)."""
        self.fabric.register_host(host)

    def _latency_between(self, a: str, b: str) -> float:
        if self._fast_uniform:
            return self.latency
        return self.fabric.latency_between(a, b)

    # -- engine partitions -----------------------------------------------------
    def set_partition_plan(self, groups: Sequence[Sequence[str]],
                           min_lookahead: float) -> None:
        """Attach a partition map for engine-workers accounting.

        ``groups`` is the host partitioning from
        :func:`repro.mpichv.shardmap.partition_hosts`;
        ``min_lookahead`` is the fabric's cross-group bound
        (:meth:`repro.netmodel.fabric.FabricModel.min_lookahead`).
        From here on every transmit is classified local vs
        cross-partition, cross traffic is checked against the
        lookahead (a delivery faster than the bound would invalidate
        the safe horizons partitioned execution grants — see
        :mod:`repro.simkernel.parallel`), and per-window payload
        markers feed the null-message accounting in
        :meth:`partition_stats`.
        """
        self._host_group = {host: gi
                            for gi, group in enumerate(groups)
                            for host in group}
        self._group_lookahead = min_lookahead
        self.n_groups = len(groups)

    def begin_window(self) -> None:
        """Open the next horizon window (runtime-driven; one call per
        safe-horizon grant)."""
        self._window += 1

    def partition_stats(self) -> Dict[str, Any]:
        """Cross-partition accounting for :class:`RunResult.parallel`.

        ``null_messages`` is computed, not sampled: every window grants
        every directed cross-group channel a horizon, and a grant that
        shipped no payload *is* the null message of the distributed
        protocol — so ``windows * channels - payload_windows`` without
        any per-window channel scan (O(1) per transmit, nothing per
        window).
        """
        channels = self.n_groups * (self.n_groups - 1)
        windows = self._window
        return {
            "partitions": self.n_groups,
            "windows": windows,
            "channels": channels,
            "cross_messages": self.cross_messages,
            "cross_bytes": self.cross_bytes,
            "payload_windows": self.payload_windows,
            "null_messages": windows * channels - self.payload_windows,
            "min_lookahead": self._group_lookahead,
        }

    # -- link state ------------------------------------------------------------
    @property
    def partitioned(self) -> bool:
        """True while any cut is active."""
        return bool(self._isolated or self._cut_pairs)

    def reachable(self, a: str, b: str) -> bool:
        """Can hosts ``a`` and ``b`` currently exchange packets?"""
        if a == b:
            return True
        if self._cut_pairs and frozenset((a, b)) in self._cut_pairs:
            return False
        if self._isolated and ((a in self._isolated) != (b in self._isolated)):
            return False
        return True

    def cut_link(self, host_a: str, host_b: str) -> None:
        """Cut the path between one host pair."""
        if host_a == host_b:
            raise ValueError("cannot cut a host from itself")
        self._cut_pairs.add(frozenset((host_a, host_b)))
        self.engine.span("netsplit", lane="net", op="cut_link",
                         hosts=sorted((host_a, host_b)))
        self._sever_spanning()

    def isolate(self, *hosts: str) -> None:
        """Move ``hosts`` onto the isolated side of the partition.

        Isolation accumulates: isolated hosts stay connected to *each
        other* but lose every host on the majority side — so isolating
        a CM neighborhood one machine at a time builds one coherent
        minority partition.
        """
        self._isolated.update(hosts)
        self.engine.span("netsplit", lane="net", op="isolate",
                         hosts=sorted(hosts))
        self._sever_spanning()

    def partition(self, groups: Sequence[Sequence[str]]) -> None:
        """Cut every path between hosts of different ``groups``.

        Hosts absent from every group keep full connectivity.
        """
        groups = [list(g) for g in groups]
        for i, ga in enumerate(groups):
            for gb in groups[i + 1:]:
                for a in ga:
                    for b in gb:
                        if a != b:
                            self._cut_pairs.add(frozenset((a, b)))
        self.engine.span("netsplit", lane="net", op="partition",
                         groups=[sorted(g) for g in groups])
        self._sever_spanning()

    def heal(self) -> None:
        """Restore full reachability.

        Pending severance notifications re-check reachability when they
        fire, so a heal within one path latency of the cut wins the
        race and the connection survives; already-severed connections
        stay dead (a healed partition does not resurrect them).
        """
        self._isolated.clear()
        self._cut_pairs.clear()
        # one heal ends every open split at the same instant, so
        # overlapping cuts close nested-at-boundary
        obs = self.engine.obs
        if obs is not None:
            obs.close_all("netsplit", self.engine.now)

    def _sever_spanning(self) -> None:
        """Schedule severance of live connections that now span a cut."""
        for sock in list(self._sockets):
            peer = sock._peer
            if peer is None or not sock._initiator:
                continue            # pairs are processed once, client side
            if sock._rx.closed and peer._rx.closed:
                continue            # already dead
            if sock._sever_pending:
                continue
            if self.reachable(sock.local_host, peer.local_host):
                continue
            sock._sever_pending = True
            delay = self._latency_between(sock.local_host, peer.local_host)

            def _fire(a=sock, b=peer) -> None:
                a._sever_pending = False
                if self.reachable(a.local_host, b.local_host):
                    return          # healed before the closure landed
                for s in (a, b):
                    if not s._rx.closed:
                        s._rx.close()
                        s._peer_closed = True
                    # dead for good: drop from the severing scan set
                    self._sockets.pop(s, None)

            self.engine.call_later(delay, _fire)

    # -- traffic accounting ----------------------------------------------------
    def link_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-link counters; the uniform fabric reports its single
        aggregate pipe (the hot path keeps no per-link books)."""
        if self._fast_uniform:
            return {"fabric": {"bytes": self.bytes_sent,
                               "messages": self.messages_sent}}
        return self.fabric.link_stats()

    def hotspot(self) -> Tuple[Optional[str], int]:
        """``(link name, bytes)`` of the busiest link.

        The uniform fabric reports ``(None, 0)``: it keeps no per-link
        books (the hot path never consults the fabric), so there is no
        busiest link — the old ``("fabric", total)`` answer read as a
        100 %-saturated link in benchmark rows when it was really just
        the aggregate restated (see ``tests/test_netmodel.py``).
        """
        if self._fast_uniform:
            return (None, 0)
        return self.fabric.hotspot()

    # -- listening -----------------------------------------------------------
    def listen(self, addr: Address, owner=None) -> "ListenSocket":
        """Bind a listening socket at ``addr``."""
        if addr in self._listeners:
            raise OSError(f"address {addr} already in use")
        ls = ListenSocket(self, addr, owner=owner)
        self._listeners[addr] = ls
        self._all_listeners.append(ls)
        if owner is not None:
            owner.adopt_socket(ls)
        return ls

    def _unbind(self, addr: Address) -> None:
        self._listeners.pop(addr, None)

    # -- connecting -----------------------------------------------------------
    def connect(self, src_host: str, addr: Address, owner=None):
        """Open a connection to ``addr``.

        Returns an :class:`Event` which succeeds with the client
        :class:`Socket` after one round trip, or fails with
        :class:`ConnectionRefused` — also when the path is cut (the
        handshake cannot cross a partition).
        """
        ev = self.engine.event(name=f"connect({addr})")
        rtt = 2 * self._latency_between(src_host, addr.host)
        listener = self._listeners.get(addr)
        if listener is None or listener.closed \
                or not self.reachable(src_host, addr.host):
            # Refusal (or the partition timeout) still takes a round trip.
            self.engine.call_later(
                rtt,
                lambda: ev.fail(ConnectionRefused(f"no listener at {addr}")))
            return ev
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        client = Socket(self, conn_id, local_host=src_host, remote=addr,
                        owner=owner, initiator=True)
        server = Socket(self, conn_id, local_host=addr.host,
                        remote=Address(src_host, -conn_id), owner=listener.owner)
        client._peer = server
        server._peer = client
        if owner is not None:
            owner.adopt_socket(client)
        if listener.owner is not None:
            listener.owner.adopt_socket(server)

        def _deliver() -> None:
            if listener.closed \
                    or not self.reachable(src_host, addr.host):
                ev.fail(ConnectionRefused(f"listener at {addr} closed"))
                return
            self._sockets[client] = None
            self._sockets[server] = None
            listener._backlog.put(server)
            ev.succeed(client)

        self.engine.call_later(rtt, _deliver)
        return ev

    # -- transmission (socket-internal) -----------------------------------------
    def _transmit(self, sock: "Socket", msg: Any, size: int) -> None:
        peer = sock._peer
        if peer is None or peer._rx.closed:
            return  # packets to a dead endpoint vanish
        if (self._isolated or self._cut_pairs) \
                and not self.reachable(sock.local_host, peer.local_host):
            return  # packets into a cut vanish
        self.bytes_sent += size
        self.messages_sent += 1
        if self._fast_uniform:
            # Hot path: the historical arithmetic, no fabric lookup.
            arrival = max(sock._pipe_free,
                          self.engine.now + self.latency + size / self.bandwidth)
        else:
            arrival = self.fabric.delivery(self.engine.now, sock.local_host,
                                           peer.local_host, size,
                                           sock._pipe_free)
        sock._pipe_free = arrival
        host_group = self._host_group
        if host_group is not None:
            gs = host_group.get(sock.local_host)
            gd = host_group.get(peer.local_host)
            if gs != gd and gs is not None and gd is not None:
                # Cross-partition payload: account it and check the
                # conservative bound.  Control-plane paths (connect,
                # close notify, severance) all wait >= one path latency
                # by construction, so the transmit path is the only
                # place the bound needs a runtime guard.
                self.cross_messages += 1
                self.cross_bytes += size
                if arrival - self.engine.now < self._group_lookahead:
                    raise LookaheadViolation(
                        f"delivery {sock.local_host}->{peer.local_host} in "
                        f"{arrival - self.engine.now:.3g}s beats the "
                        f"partition lookahead {self._group_lookahead:.3g}s")
                key = (gs, gd)
                if self._channel_last_window.get(key) != self._window:
                    self._channel_last_window[key] = self._window
                    self.payload_windows += 1

        obs = self.engine.obs
        if obs is not None:
            # Causal choke point: every stamped message crosses here
            # exactly once per transmission, with the arrival already
            # computed — so the graph is a pure function of the
            # simulated history (see repro.obs.causal).
            ctx = getattr(msg, "_causal_ctx", None)
            if ctx is not None:
                obs.causal.on_transmit(ctx, type(msg).__name__,
                                       sock.local_host, peer.local_host,
                                       self.engine.now, arrival, size)

        def _arrive() -> None:
            if not peer._rx.closed:
                peer._rx.put(msg)

        self.engine.call_at(arrival, _arrive)

    def _notify_close(self, sock: "Socket") -> None:
        """Propagate a close to the peer after one path latency.

        Deliberately ignores cuts: a close during a partition surfaces
        at the peer anyway (the OS reset once packets flow again),
        which keeps half-open connections from hanging forever.
        """
        peer = sock._peer
        if peer is None:
            return
        arrival = max(sock._pipe_free,
                      self.engine.now
                      + self._latency_between(sock.local_host, peer.local_host))

        def _close_peer() -> None:
            peer._rx.close()
            peer._peer_closed = True

        self.engine.call_at(arrival, _close_peer)

    def _forget(self, sock: "Socket") -> None:
        self._sockets.pop(sock, None)

    def dispose(self) -> None:
        """Break every endpoint's reference cycles, dead ones included
        (teardown only — see ``VclRuntime.dispose``)."""
        for sock in self._all_sockets:
            sock.dispose()
        self._all_sockets.clear()
        self._sockets.clear()
        for listener in self._all_listeners:
            listener.dispose()
        self._all_listeners.clear()
        self._listeners.clear()


class ListenSocket:
    """A bound listening endpoint; ``accept()`` yields server sockets."""

    def __init__(self, network: Network, addr: Address, owner=None):
        self.network = network
        self.addr = addr
        self.owner = owner
        self._backlog: Store = Store(network.engine, name=f"listen({addr})")
        self.closed = False

    def accept(self) -> Event:
        """Event yielding the next incoming :class:`Socket`.

        Fails with :class:`StoreClosed` if the listener closes while
        waiting.
        """
        return self._backlog.get()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.network._unbind(self.addr)
        # Refuse queued, never-accepted connections: close their peers.
        while len(self._backlog):
            srv = self._backlog.get_nowait()
            srv.close()
        self._backlog.close()

    def dispose(self) -> None:
        """Teardown-only cycle breaking (owner link, queued peers)."""
        self.owner = None
        self._backlog.dispose()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ListenSocket {self.addr} closed={self.closed}>"


class Socket:
    """One endpoint of an established connection."""

    def __init__(self, network: Network, conn_id: int, local_host: str,
                 remote: Address, owner=None, initiator: bool = False):
        self.network = network
        self.conn_id = conn_id
        self.local_host = local_host
        self.remote = remote
        self.owner = owner
        self._rx: Store = Store(network.engine, name=f"sock#{conn_id}@{local_host}")
        self._peer: Optional["Socket"] = None
        self._pipe_free: float = 0.0  # next time the outgoing pipe is free
        self.closed = False
        self._peer_closed = False
        self._initiator = initiator
        self._sever_pending = False
        network._all_sockets.append(self)

    # -- I/O ------------------------------------------------------------------
    def send(self, msg: Any, size: Optional[int] = None) -> None:
        """Queue ``msg`` for delivery (non-blocking, buffered)."""
        if self.closed:
            raise ConnectionClosed(f"send on closed socket #{self.conn_id}")
        self.network._transmit(self, msg, _msg_size(msg, size))

    def recv(self) -> Event:
        """Event yielding the next message.

        The event *fails* with :class:`ConnectionClosed` if the peer
        closed (including peer-process death) — translate from the
        store-level :class:`StoreClosed` at the waiting site via
        :meth:`recv_translated` or catch ``StoreClosed`` directly.
        """
        return self._rx.get()

    def recv_iter(self):
        """Generator helper: ``msg = yield from sock.recv_iter()``
        raising :class:`ConnectionClosed` on closure."""
        try:
            msg = yield self._rx.get()
        except StoreClosed as err:
            raise ConnectionClosed(str(err)) from err
        return msg

    def close(self) -> None:
        """Close this endpoint; peer learns after one latency."""
        if self.closed:
            return
        self.closed = True
        self._rx.close()
        if self.owner is not None:
            self.owner.disown_socket(self)
        self.network._forget(self)
        self.network._notify_close(self)

    @property
    def peer_alive(self) -> bool:
        return not self._peer_closed and not self._rx.closed

    def dispose(self) -> None:
        """Teardown-only cycle breaking (the ``_peer`` pair link is the
        cycle; owner and buffered messages pin the rest)."""
        self._peer = None
        self.owner = None
        self._rx.dispose()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Socket #{self.conn_id} {self.local_host}->{self.remote} "
                f"closed={self.closed}>")
