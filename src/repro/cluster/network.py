"""A TCP-like network model.

Characteristics modelled (and why):

* **per-connection FIFO** with delivery time
  ``max(prev_arrival, now + latency + size/bandwidth)`` — messages on a
  connection never reorder, and large transfers (checkpoint images)
  take size-proportional time, which drives the paper's Fig. 6
  observation about 25-node checkpoints being slower;
* **closure notification** — closing either end (explicitly or because
  the owning process was killed) closes the peer's receive stream after
  one latency, so a blocked ``recv`` fails with
  :class:`ConnectionClosed`.  This is exactly the failure-detection
  channel MPICH-V's dispatcher uses ("a failure is assumed after any
  unexpected socket closure");
* **connection refusal** when nothing listens on the target address.

No packet loss or partitions: the paper's experiments kill whole tasks,
never the network, so link failures are out of scope (documented
substitution).
"""

from __future__ import annotations

from typing import Any, Dict, NamedTuple, Optional

from repro.simkernel.engine import Engine
from repro.simkernel.events import Event
from repro.simkernel.store import Store, StoreClosed


class Address(NamedTuple):
    """A (host, port) endpoint address."""

    host: str
    port: int

    def __str__(self) -> str:  # pragma: no cover - cosmetics
        return f"{self.host}:{self.port}"


class ConnectionClosed(Exception):
    """The peer endpoint closed (or its process died)."""


class ConnectionRefused(Exception):
    """No listener at the target address."""


DEFAULT_LATENCY = 1e-4          # 100 us — GigE-ish
DEFAULT_BANDWIDTH = 100e6       # 100 MB/s effective GigE payload rate
DEFAULT_MSG_SIZE = 1024         # bytes, when a message has no size hint


def _msg_size(msg: Any, size: Optional[int]) -> int:
    if size is not None:
        return size
    hinted = getattr(msg, "size", None)
    if isinstance(hinted, (int, float)) and hinted >= 0:
        return int(hinted)
    return DEFAULT_MSG_SIZE


class Network:
    """The fabric connecting all nodes of the simulated cluster."""

    def __init__(self, engine: Engine,
                 latency: float = DEFAULT_LATENCY,
                 bandwidth: float = DEFAULT_BANDWIDTH):
        if latency < 0 or bandwidth <= 0:
            raise ValueError("latency must be >=0 and bandwidth >0")
        self.engine = engine
        self.latency = latency
        self.bandwidth = bandwidth
        self._listeners: Dict[Address, "ListenSocket"] = {}
        #: monotone id source for connections (stable trace labels)
        self._next_conn_id = 1
        self.bytes_sent = 0
        self.messages_sent = 0

    # -- listening -----------------------------------------------------------
    def listen(self, addr: Address, owner=None) -> "ListenSocket":
        """Bind a listening socket at ``addr``."""
        if addr in self._listeners:
            raise OSError(f"address {addr} already in use")
        ls = ListenSocket(self, addr, owner=owner)
        self._listeners[addr] = ls
        if owner is not None:
            owner.adopt_socket(ls)
        return ls

    def _unbind(self, addr: Address) -> None:
        self._listeners.pop(addr, None)

    # -- connecting -----------------------------------------------------------
    def connect(self, src_host: str, addr: Address, owner=None):
        """Open a connection to ``addr``.

        Returns an :class:`Event` which succeeds with the client
        :class:`Socket` after one round trip, or fails with
        :class:`ConnectionRefused`.
        """
        ev = self.engine.event(name=f"connect({addr})")
        listener = self._listeners.get(addr)
        if listener is None or listener.closed:
            # Refusal still takes a round trip.
            self.engine.call_later(
                2 * self.latency,
                lambda: ev.fail(ConnectionRefused(f"no listener at {addr}")))
            return ev
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        client = Socket(self, conn_id, local_host=src_host, remote=addr, owner=owner)
        server = Socket(self, conn_id, local_host=addr.host,
                        remote=Address(src_host, -conn_id), owner=listener.owner)
        client._peer = server
        server._peer = client
        if owner is not None:
            owner.adopt_socket(client)
        if listener.owner is not None:
            listener.owner.adopt_socket(server)

        def _deliver() -> None:
            if listener.closed:
                ev.fail(ConnectionRefused(f"listener at {addr} closed"))
                return
            listener._backlog.put(server)
            ev.succeed(client)

        self.engine.call_later(2 * self.latency, _deliver)
        return ev

    # -- transmission (socket-internal) -----------------------------------------
    def _transmit(self, sock: "Socket", msg: Any, size: int) -> None:
        peer = sock._peer
        if peer is None or peer._rx.closed:
            return  # packets to a dead endpoint vanish
        self.bytes_sent += size
        self.messages_sent += 1
        arrival = max(sock._pipe_free, self.engine.now + self.latency + size / self.bandwidth)
        sock._pipe_free = arrival

        def _arrive() -> None:
            if not peer._rx.closed:
                peer._rx.put(msg)

        self.engine.call_at(arrival, _arrive)

    def _notify_close(self, sock: "Socket") -> None:
        """Propagate a close to the peer after one latency."""
        peer = sock._peer
        if peer is None:
            return
        arrival = max(sock._pipe_free, self.engine.now + self.latency)

        def _close_peer() -> None:
            peer._rx.close()
            peer._peer_closed = True

        self.engine.call_at(arrival, _close_peer)


class ListenSocket:
    """A bound listening endpoint; ``accept()`` yields server sockets."""

    def __init__(self, network: Network, addr: Address, owner=None):
        self.network = network
        self.addr = addr
        self.owner = owner
        self._backlog: Store = Store(network.engine, name=f"listen({addr})")
        self.closed = False

    def accept(self) -> Event:
        """Event yielding the next incoming :class:`Socket`.

        Fails with :class:`StoreClosed` if the listener closes while
        waiting.
        """
        return self._backlog.get()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.network._unbind(self.addr)
        # Refuse queued, never-accepted connections: close their peers.
        while len(self._backlog):
            srv = self._backlog.get_nowait()
            srv.close()
        self._backlog.close()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ListenSocket {self.addr} closed={self.closed}>"


class Socket:
    """One endpoint of an established connection."""

    def __init__(self, network: Network, conn_id: int, local_host: str,
                 remote: Address, owner=None):
        self.network = network
        self.conn_id = conn_id
        self.local_host = local_host
        self.remote = remote
        self.owner = owner
        self._rx: Store = Store(network.engine, name=f"sock#{conn_id}@{local_host}")
        self._peer: Optional["Socket"] = None
        self._pipe_free: float = 0.0  # next time the outgoing pipe is free
        self.closed = False
        self._peer_closed = False

    # -- I/O ------------------------------------------------------------------
    def send(self, msg: Any, size: Optional[int] = None) -> None:
        """Queue ``msg`` for delivery (non-blocking, buffered)."""
        if self.closed:
            raise ConnectionClosed(f"send on closed socket #{self.conn_id}")
        self.network._transmit(self, msg, _msg_size(msg, size))

    def recv(self) -> Event:
        """Event yielding the next message.

        The event *fails* with :class:`ConnectionClosed` if the peer
        closed (including peer-process death) — translate from the
        store-level :class:`StoreClosed` at the waiting site via
        :meth:`recv_translated` or catch ``StoreClosed`` directly.
        """
        return self._rx.get()

    def recv_iter(self):
        """Generator helper: ``msg = yield from sock.recv_iter()``
        raising :class:`ConnectionClosed` on closure."""
        try:
            msg = yield self._rx.get()
        except StoreClosed as err:
            raise ConnectionClosed(str(err)) from err
        return msg

    def close(self) -> None:
        """Close this endpoint; peer learns after one latency."""
        if self.closed:
            return
        self.closed = True
        self._rx.close()
        if self.owner is not None:
            self.owner.disown_socket(self)
        self.network._notify_close(self)

    @property
    def peer_alive(self) -> bool:
        return not self._peer_closed and not self._rx.closed

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Socket #{self.conn_id} {self.local_host}->{self.remote} "
                f"closed={self.closed}>")
