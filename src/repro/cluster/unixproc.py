"""Simulated unix processes.

A :class:`UnixProcess` groups one *main* simulated coroutine plus any
helper threads, owns sockets (closed by the "OS" when the process
dies), and exposes the control surface the FAIL debugger needs:

* ``kill()``   — SIGKILL: all threads die instantly, sockets close;
* ``suspend()``/``resume_all()`` — debugger stop/continue of every thread;
* ``trace_point(name)`` — a cooperative breakpoint site; programs mark
  protocol locations (e.g. ``localMPI_setCommand``) with
  ``yield from proc.trace_point("localMPI_setCommand")`` and an armed
  debugger can intercept there (see :mod:`repro.fail.debugger`).

Exit notification: node-level listeners observe normal exits, error
exits and kills — the events the FAIL language maps to ``onexit`` /
``onerror`` (a kill is the *injected* death, handled separately by the
injector itself).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.simkernel.process import Process


class ProcState(enum.Enum):
    RUNNING = "running"
    SUSPENDED = "suspended"
    EXITED = "exited"
    ERRORED = "errored"
    KILLED = "killed"

    @property
    def alive(self) -> bool:
        return self in (ProcState.RUNNING, ProcState.SUSPENDED)


class UnixProcess:
    """A process on a :class:`~repro.cluster.node.Node`.

    Parameters
    ----------
    node:
        Hosting node.
    name:
        Program name (used by FAIL group matching and traces).
    main:
        Generator factory ``f(proc) -> generator`` for the main thread.
    """

    def __init__(self, node, name: str, main: Callable[["UnixProcess"], Generator],
                 tags: Optional[Dict[str, Any]] = None):
        self.node = node
        self.engine = node.engine
        self.name = name
        self.tags: Dict[str, Any] = dict(tags or {})
        self.pid = node.cluster.next_pid()
        self.state = ProcState.RUNNING
        self.exit_value: Any = None
        self.exit_error: Optional[BaseException] = None
        self._threads: List[Process] = []
        self._sockets: List[Any] = []
        self._exit_listeners: List[Callable[["UnixProcess", ProcState], None]] = []
        #: breakpoint interceptors: name -> callable(proc, name, resume_event)
        #: returning True if it took ownership of the pause (see trace_point)
        self._bp_handlers: Dict[str, Callable] = {}
        self.main_thread = self.spawn_thread(main(self), name=f"{name}.main", _main=True)

    # -- threads -------------------------------------------------------------
    def spawn_thread(self, gen: Generator, name: Optional[str] = None,
                     _main: bool = False) -> Process:
        """Run ``gen`` as an additional thread of this process."""
        if not self.state.alive:
            raise RuntimeError(f"spawn_thread on dead process {self}")
        t = self.engine.process(gen, name=name or f"{self.name}.t{len(self._threads)}")
        self._threads.append(t)
        t.add_callback(lambda ev, main=_main: self._thread_done(ev, main))
        if self.state is ProcState.SUSPENDED:
            t.suspend()
        return t

    def _thread_done(self, ev, is_main: bool) -> None:
        if not self.state.alive:
            return
        if not ev.ok:
            # A crashing thread takes the whole process down (abort()).
            self.exit_error = ev.exception
            self._terminate(ProcState.ERRORED)
        elif is_main:
            self.exit_value = ev._value
            self._terminate(ProcState.EXITED)

    # -- sockets ---------------------------------------------------------------
    def adopt_socket(self, sock) -> None:
        self._sockets.append(sock)

    def disown_socket(self, sock) -> None:
        if sock in self._sockets:
            self._sockets.remove(sock)

    # -- lifecycle ---------------------------------------------------------------
    def kill(self) -> None:
        """SIGKILL: immediate death, no user-space cleanup."""
        if not self.state.alive:
            return
        self._terminate(ProcState.KILLED)

    def exit(self, value: Any = None) -> None:
        """Voluntary clean exit (callable from the process's own
        threads): ends every thread, closes sockets, reports EXITED —
        the event FAIL maps to ``onexit``."""
        if not self.state.alive:
            return
        self.exit_value = value
        self._terminate(ProcState.EXITED)

    def abort(self) -> None:
        """Voluntary abnormal exit — reported as ERRORED (FAIL
        ``onerror``)."""
        if not self.state.alive:
            return
        self._terminate(ProcState.ERRORED)

    def _terminate(self, final: ProcState) -> None:
        self.state = final
        for t in self._threads:
            if t.alive:
                t.kill()
        # The OS closes every fd the process held: peers see closure.
        for sock in list(self._sockets):
            sock.close()
        self._sockets.clear()
        self.node._proc_gone(self)
        self.engine.log("proc_exit", pid=self.pid, name=self.name,
                        node=self.node.name, how=final.value)
        for listener in list(self._exit_listeners):
            listener(self, final)

    def on_exit(self, listener: Callable[["UnixProcess", ProcState], None]) -> None:
        """Register an exit listener (FAIL onexit/onerror plumbing).

        A listener registered on an already-dead process fires
        immediately — subscribers (e.g. the dispatcher's ssh watch)
        must not miss a death that happened in the same instant as the
        spawn.
        """
        if not self.state.alive:
            listener(self, self.state)
            return
        self._exit_listeners.append(listener)

    # -- debugger surface ---------------------------------------------------------
    def suspend(self) -> None:
        """Debugger stop: freeze every thread."""
        if self.state is ProcState.RUNNING:
            self.state = ProcState.SUSPENDED
            for t in self._threads:
                if t.alive:
                    t.suspend()

    def resume_all(self) -> None:
        """Debugger continue."""
        if self.state is ProcState.SUSPENDED:
            self.state = ProcState.RUNNING
            for t in self._threads:
                if t.alive:
                    t.resume()

    def set_breakpoint(self, fn_name: str, handler: Callable) -> None:
        """Arm a breakpoint at trace point ``fn_name``.

        ``handler(proc, fn_name, resume_event)`` runs (asynchronously,
        at the same instant) when a thread reaches the trace point; the
        thread stays blocked until ``resume_event`` succeeds or the
        process dies.
        """
        self._bp_handlers[fn_name] = handler

    def clear_breakpoint(self, fn_name: str) -> None:
        self._bp_handlers.pop(fn_name, None)

    def trace_point(self, fn_name: str):
        """Cooperative breakpoint site; use ``yield from``.

        Fast path (no breakpoint armed) yields nothing at all, so
        un-instrumented runs pay only a dict lookup.
        """
        handler = self._bp_handlers.get(fn_name)
        if handler is None:
            return
        resume = self.engine.event(name=f"bp({fn_name})@{self.name}")
        # Notify asynchronously so the handler may safely kill/suspend us.
        self.engine.call_later(0.0, lambda: handler(self, fn_name, resume))
        yield resume

    def sleep(self, delay: float):
        """Convenience: ``yield from proc.sleep(dt)``."""
        yield self.engine.timeout(delay)

    def dispose(self) -> None:
        """Teardown-only cycle breaking: threads, sockets, handlers
        (see ``VclRuntime.dispose``); the process is unusable after."""
        self.tags.clear()
        self._sockets.clear()
        self._exit_listeners.clear()
        self._bp_handlers.clear()
        for thread in self._threads:
            thread.dispose()
        self._threads.clear()
        self.main_thread = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<UnixProcess pid={self.pid} {self.name!r} on {self.node.name} {self.state.value}>"
