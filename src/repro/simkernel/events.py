"""Event primitives for the discrete-event kernel.

Events are the only things a simulated process may ``yield``.  An event
is *triggered* exactly once, either successfully (:meth:`Event.succeed`)
with a value, or unsuccessfully (:meth:`Event.fail`) with an exception.
Triggering enqueues the event on the engine's heap at the current
simulated time; its callbacks run when the engine pops it, which keeps
the global event order total and deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

#: Heap priority classes.  Lower sorts first among events at equal time.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LAZY = 2


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries an arbitrary payload describing why
    the interrupt was delivered.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Interrupt(cause={self.cause!r})"


class ProcessKilled(Exception):
    """Raised by :meth:`repro.simkernel.process.Process.wait` semantics
    when a waited-on process was killed rather than finishing."""


class Event:
    """A one-shot occurrence in simulated time.

    Parameters
    ----------
    engine:
        The owning :class:`repro.simkernel.engine.Engine`.
    name:
        Optional label used in traces and reprs.
    """

    __slots__ = ("engine", "name", "callbacks", "_value", "_exc", "_triggered", "_processed")

    def __init__(self, engine, name: Optional[str] = None):
        self.engine = engine
        self.name = name
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the engine has run this event's callbacks."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The success value, or raise the failure exception."""
        if not self._triggered:
            raise RuntimeError(f"value of untriggered event {self!r}")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise RuntimeError(f"event {self!r} already triggered")
        self._triggered = True
        self._value = value
        self.engine._enqueue_event(self, priority)
        return self

    def fail(self, exc: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event with an exception ``exc``."""
        if self._triggered:
            raise RuntimeError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exc = exc
        self.engine._enqueue_event(self, priority)
        return self

    # -- callback plumbing ---------------------------------------------------
    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb`` to run when this event is processed.

        If the event was already processed the callback is scheduled to
        run at the current time (so late subscribers never miss it).
        """
        if self.callbacks is None:
            # Already processed: deliver asynchronously but immediately.
            self.engine._enqueue_call(lambda: cb(self))
        else:
            self.callbacks.append(cb)

    def remove_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.callbacks is not None and cb in self.callbacks:
            self.callbacks.remove(cb)

    def _process(self) -> None:
        """Run callbacks (engine-internal)."""
        if self._processed:
            return
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        for cb in callbacks or ():
            cb(self)

    #: the engine dispatches every slot payload with ``payload()`` —
    #: aliasing keeps Events and bare callables on one uniform hot
    #: path (no per-event isinstance)
    __call__ = _process

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        label = self.name or self.__class__.__name__
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{label} {state} at t={getattr(self.engine, 'now', '?')}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine, delay: float, value: Any = None, name: Optional[str] = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        # no eager f-string label: one Timeout per sleep/transfer makes
        # this a hot path, and __repr__ falls back to the class name
        super().__init__(engine, name=name)
        self.delay = delay
        self._triggered = True
        self._value = value
        engine._enqueue_event(self, PRIORITY_NORMAL, delay=delay)


class _Condition(Event):
    """Common machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_count")

    def __init__(self, engine, events):
        super().__init__(engine)
        self.events = tuple(events)
        self._count = 0
        for ev in self.events:
            if not isinstance(ev, Event):
                raise TypeError(f"condition operand {ev!r} is not an Event")
            ev.add_callback(self._on_child)
        if not self.events:
            self.succeed({})

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.exception)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self):
        # Only events whose callbacks ran count as "happened" — a
        # Timeout is triggered at creation but fires later.
        return {ev: ev._value for ev in self.events if ev.processed and ev.ok}


class AnyOf(_Condition):
    """Triggers when *any* child event triggers.

    The value is a dict mapping each already-triggered child to its
    value, letting the waiter see which one(s) fired.
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class AllOf(_Condition):
    """Triggers when *all* child events have triggered."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self.events)
