"""Conservative parallel discrete-event simulation across OS processes.

The single-engine simulator is strictly one core per trial; this
module partitions a simulation into *logical partitions*, each running
its own :class:`~repro.simkernel.engine.Engine` in its own worker, and
synchronizes them with the classic conservative (Chandy–Misra–Bryant)
discipline:

* every cross-partition interaction travels a declared
  :class:`ChannelSpec` with a **lookahead** ``L > 0`` — a send at
  simulated time ``t`` can affect the destination no earlier than
  ``t + L`` (in the deployment integration the link latency of the
  fabric is exactly this bound);
* a partition may only advance to its **safe horizon** — the earliest
  simulated time at which any inbound channel could still deliver.
  Horizons are a fixpoint over the channel graph (a sender that is
  itself blocked cannot emit either), computed each round by the
  coordinator from every partition's next-event time;
* a channel that carries no payload in a round still advances its
  clock — the coordinator's horizon grant *is* the **null message**
  of the distributed protocol, and is accounted as one
  (:class:`ParallelStats.null_messages`).  Lookahead being strictly
  positive is what makes the null-message chain advance global time,
  i.e. the standard CMB deadlock-avoidance argument;
* termination is **barrier-free drain**: no global barrier event is
  ever scheduled — the run is over exactly when every partition
  reports an empty slot table and no message is in flight.

Two interchangeable backends execute the same protocol:

``processes``
    One OS worker process per partition (``fork`` start method),
    commands and messages over pipes.  Real multicore scaling: each
    worker's event loop runs unshackled from the others' GIL.  Each
    worker pauses its cyclic GC for the run and disposes its engine at
    exit, mirroring the single-core trial throughput path.
``inline``
    The identical coordinator/worker round protocol driven
    cooperatively in one process, in deterministic partition order.
    This is the reference executor for tests — ``inline`` and
    ``processes`` runs are bit-for-bit identical
    (``tests/test_parallel_engine.py``) — and the fallback when the
    platform cannot fork.

Determinism contract: partition engines are seeded as
``seed + 7919 * partition_index`` (the campaign seed scheme), message
delivery into a partition is ordered by ``(arrival time, source
partition, per-source sequence)`` before scheduling, and coordinator
decisions are pure functions of reported next-event times — so worker
count changes wall-clock only, never history.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.simkernel.engine import Engine, gc_paused

#: seed stride between partition engines (the 1000th prime, the same
#: scheme :func:`repro.experiments.harness.trial_seed` uses for trials)
SEED_STRIDE = 7919

_INF = math.inf


class LookaheadViolation(Exception):
    """A cross-partition message was sent with less delay than its
    channel's declared lookahead — the conservative guarantee the
    whole synchronization scheme rests on."""


@dataclass(frozen=True)
class ChannelSpec:
    """One directed cross-partition link with a conservative bound.

    ``lookahead`` promises: a payload sent at time ``t`` arrives at
    ``>= t + lookahead``.  It must be strictly positive — a zero bound
    would allow a same-instant causal chain between partitions, which
    conservative synchronization cannot order.
    """

    src: str
    dst: str
    lookahead: float

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"channel {self.src}->{self.dst} is a self-loop")
        if not self.lookahead > 0:
            raise ValueError(
                f"channel {self.src}->{self.dst} needs lookahead > 0, "
                f"got {self.lookahead!r} (zero lookahead cannot be "
                f"conservatively ordered)")


@dataclass(frozen=True)
class PartitionSpec:
    """One partition: a name and a model builder.

    ``build(ctx, *args)`` runs once inside the partition's worker; it
    spawns processes/timers on ``ctx.engine`` and registers the
    inbound-message handler via ``ctx.on_receive``.  ``finish(ctx)``
    (optional) runs after the drain and its picklable return value
    becomes the partition's entry in the run's result dict.
    """

    name: str
    build: Callable[..., None]
    args: Tuple = ()
    finish: Optional[Callable[["PartitionContext"], Any]] = None


@dataclass
class ParallelStats:
    """Where the synchronization effort went."""

    backend: str = "inline"
    partitions: int = 0
    rounds: int = 0
    #: cross-partition payload messages shipped
    payload_messages: int = 0
    #: horizon grants on channels that carried no payload that round —
    #: exactly the null messages a distributed CMB run would send
    null_messages: int = 0
    events_processed: int = 0
    per_partition_events: Dict[str, int] = field(default_factory=dict)
    min_lookahead: float = _INF

    def as_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "partitions": self.partitions,
            "rounds": self.rounds,
            "payload_messages": self.payload_messages,
            "null_messages": self.null_messages,
            "events_processed": self.events_processed,
            "per_partition_events": dict(self.per_partition_events),
            "min_lookahead": self.min_lookahead,
        }


class PartitionContext:
    """The worker-side view of one partition."""

    def __init__(self, name: str, index: int, engine: Engine,
                 out_lookahead: Dict[str, float]):
        self.name = name
        self.index = index
        self.engine = engine
        self._out_lookahead = out_lookahead
        #: (send_time, arrival, dst, seq, msg) accumulated this round
        self._outbox: List[Tuple[float, float, str, int, Any]] = []
        self._seq = 0
        self._handler: Optional[Callable[[str, Any], None]] = None

    def on_receive(self, handler: Callable[[str, Any], None]) -> None:
        """Register ``handler(src_partition, msg)``, invoked at each
        inbound payload's arrival time (inside the engine's clock)."""
        self._handler = handler

    def send(self, dst: str, msg: Any, delay: Optional[float] = None) -> None:
        """Ship ``msg`` to partition ``dst``, arriving ``delay`` after
        now (default: the channel's lookahead, the earliest legal
        arrival).  ``delay`` below the lookahead is a protocol error.
        """
        lookahead = self._out_lookahead.get(dst)
        if lookahead is None:
            raise ValueError(f"no channel {self.name}->{dst} declared")
        if delay is None:
            delay = lookahead
        elif delay < lookahead:
            raise LookaheadViolation(
                f"send {self.name}->{dst} with delay {delay} under the "
                f"channel lookahead {lookahead}")
        now = self.engine.now
        self._outbox.append((now, now + delay, dst, self._seq, msg))
        self._seq += 1

    # -- worker internals ---------------------------------------------------
    def _deliver(self, batch: Sequence[Tuple[float, int, int, Any]]) -> None:
        """Schedule inbound payloads ``(arrival, src_index, seq, msg)``.

        The batch is sorted before scheduling so same-instant arrivals
        enqueue in ``(arrival, source partition, sequence)`` order —
        the deterministic tie-break both backends share.
        """
        handler = self._handler
        if handler is None:
            raise RuntimeError(
                f"partition {self.name!r} received a message but "
                f"registered no on_receive handler")
        engine = self.engine
        for arrival, src_index, _seq, msg in sorted(
                batch, key=lambda m: (m[0], m[1], m[2])):
            if arrival < engine.now:
                raise LookaheadViolation(
                    f"partition {self.name!r} got a message for t={arrival} "
                    f"after advancing to t={engine.now} — safe horizon "
                    f"violated")
            engine.call_at(arrival, _Delivery(handler, src_index, msg))

    def _take_outbox(self) -> List[Tuple[float, float, str, int, Any]]:
        out = self._outbox
        self._outbox = []
        return out


class _Delivery:
    """A pending inbound payload (kept a class, not a closure, so the
    per-message allocation stays small and picklable state obvious)."""

    __slots__ = ("handler", "src_index", "msg")

    def __init__(self, handler, src_index, msg):
        self.handler = handler
        self.src_index = src_index
        self.msg = msg

    def __call__(self) -> None:
        self.handler(self.src_index, self.msg)


class _Worker:
    """One partition's executor: an engine plus the round protocol.

    Used directly by the inline backend and wrapped in a child process
    by the processes backend — the logic is shared, which is what makes
    the two backends bit-for-bit identical.
    """

    def __init__(self, spec: PartitionSpec, index: int, seed: int,
                 out_lookahead: Dict[str, float]):
        self.spec = spec
        self.engine = Engine(seed=seed + SEED_STRIDE * index)
        self.ctx = PartitionContext(spec.name, index, self.engine,
                                    out_lookahead)
        spec.build(self.ctx, *spec.args)

    def run_round(self, horizon: float,
                  inbound: Sequence[Tuple[float, int, int, Any]]
                  ) -> Tuple[float, List[Tuple[float, float, str, int, Any]],
                             int]:
        """Deliver ``inbound``, run to ``horizon``, report
        ``(next event time, outbox, events processed so far)``."""
        if inbound:
            self.ctx._deliver(inbound)
        self.engine.run_horizon(horizon)
        return (self.engine.peek(), self.ctx._take_outbox(),
                self.engine.events_processed)

    def finish(self) -> Any:
        result = None
        if self.spec.finish is not None:
            result = self.spec.finish(self.ctx)
        return result


# ---------------------------------------------------------------------------
# coordinator
# ---------------------------------------------------------------------------

def safe_horizons(next_times: Sequence[float],
                  inbound: Sequence[Sequence[Tuple[int, float]]]
                  ) -> List[float]:
    """Per-partition safe horizons — the CMB fixpoint.

    ``inbound[i]`` lists ``(src partition index, lookahead)`` for every
    channel into partition ``i``.  Partition ``i`` may execute events
    strictly below ``H_i = min over channels (S_src + L)`` where
    ``S_src = min(next_times[src], H_src)`` — a sender cannot emit
    before its own next event *or* before anything that could still
    wake it.  Computed by relaxation to the (unique) greatest fixpoint;
    with every ``L > 0`` the loop terminates in at most ``n`` sweeps
    (longest lookahead-decreasing chain, the Bellman–Ford argument).
    """
    n = len(next_times)
    horizons = [_INF] * n
    for _sweep in range(n + 1):
        changed = False
        for i in range(n):
            bound = _INF
            for src, lookahead in inbound[i]:
                s = min(next_times[src], horizons[src])
                if s + lookahead < bound:
                    bound = s + lookahead
            if bound < horizons[i]:
                horizons[i] = bound
                changed = True
        if not changed:
            break
    return horizons


class _Coordinator:
    """Drives the round protocol over a transport (inline or pipes)."""

    def __init__(self, partitions: Sequence[PartitionSpec],
                 channels: Sequence[ChannelSpec], backend: str):
        names = [p.name for p in partitions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate partition names in {names}")
        self.index_of = {name: i for i, name in enumerate(names)}
        self.partitions = list(partitions)
        self.channels = list(channels)
        for ch in channels:
            for end in (ch.src, ch.dst):
                if end not in self.index_of:
                    raise ValueError(f"channel endpoint {end!r} is not a "
                                     f"declared partition")
        #: per-partition inbound (src index, lookahead) lists
        self.inbound: List[List[Tuple[int, float]]] = [
            [] for _ in partitions]
        #: (src index, dst index) -> lookahead
        self.pair_lookahead: Dict[Tuple[int, int], float] = {}
        for ch in channels:
            s, d = self.index_of[ch.src], self.index_of[ch.dst]
            if (s, d) in self.pair_lookahead:
                raise ValueError(f"duplicate channel {ch.src}->{ch.dst}")
            self.pair_lookahead[(s, d)] = ch.lookahead
            self.inbound[d].append((s, ch.lookahead))
        self.stats = ParallelStats(
            backend=backend, partitions=len(partitions),
            min_lookahead=(min(ch.lookahead for ch in channels)
                           if channels else _INF))

    def out_lookahead_for(self, index: int) -> Dict[str, float]:
        return {self.partitions[d].name: lookahead
                for (s, d), lookahead in self.pair_lookahead.items()
                if s == index}

    def run(self, transport: "_Transport",
            until: Optional[float] = None) -> Dict[str, Any]:
        n = len(self.partitions)
        stats = self.stats
        cap = _INF if until is None else math.nextafter(until, _INF)
        next_times = transport.poll_next_times()
        #: per-partition pending deliveries for the coming round
        mailboxes: List[List[Tuple[float, int, int, Any]]] = [
            [] for _ in range(n)]
        while True:
            # Drained: no mail in flight and every partition's next
            # event is at/after the cap (``cap`` is inf when no
            # ``until`` was given, so this also covers full drain).
            if not any(mailboxes) and all(t >= cap for t in next_times):
                break
            horizons = safe_horizons(next_times, self.inbound)
            run_set = []
            for i in range(n):
                horizon = min(horizons[i], cap)
                # A partition runs this round iff it has work below its
                # horizon or fresh mail to integrate.
                if mailboxes[i] or next_times[i] < horizon:
                    run_set.append((i, horizon))
            if not run_set:
                # Nothing runnable anywhere yet mail/next-times remain:
                # only possible if every pending event sits at/after
                # the cap — the caller's `until` stops the run here.
                break
            stats.rounds += 1
            replies = transport.run_round(
                [(i, horizon, mailboxes[i]) for i, horizon in run_set])
            carried = {(s, d): 0 for (s, d) in self.pair_lookahead}
            for i, _horizon in run_set:
                mailboxes[i] = []
            for (i, _horizon), (next_time, outbox, events) in zip(run_set,
                                                                  replies):
                next_times[i] = next_time
                stats.per_partition_events[self.partitions[i].name] = events
                for send_time, arrival, dst, seq, msg in outbox:
                    d = self.index_of[dst]
                    mailboxes[d].append((arrival, i, seq, msg))
                    carried[(i, d)] += 1
                    stats.payload_messages += 1
            # Horizon grants on silent channels = null messages.
            for pair, count in carried.items():
                if count == 0:
                    stats.null_messages += 1
            # A delivered message may precede the receiver's reported
            # next event; fold mailboxes into the next-time view.
            for d in range(n):
                for arrival, _i, _seq, _msg in mailboxes[d]:
                    if arrival < next_times[d]:
                        next_times[d] = arrival
        results, events = transport.finish()
        stats.events_processed = sum(events)
        for i, count in enumerate(events):
            stats.per_partition_events[self.partitions[i].name] = count
        return {self.partitions[i].name: results[i] for i in range(n)}


# ---------------------------------------------------------------------------
# transports
# ---------------------------------------------------------------------------

class _Transport:
    """Backend seam: deliver round commands to workers, gather replies."""

    def poll_next_times(self) -> List[float]:
        raise NotImplementedError

    def run_round(self, commands):
        """``commands``: list of (index, horizon, mailbox); returns the
        matching list of (next_time, outbox, events)."""
        raise NotImplementedError

    def finish(self) -> Tuple[List[Any], List[int]]:
        raise NotImplementedError


class _InlineTransport(_Transport):
    """All workers in-process, driven in partition-index order."""

    def __init__(self, coordinator: _Coordinator, seed: int):
        self.workers = [
            _Worker(spec, i, seed, coordinator.out_lookahead_for(i))
            for i, spec in enumerate(coordinator.partitions)]

    def poll_next_times(self) -> List[float]:
        return [w.engine.peek() for w in self.workers]

    def run_round(self, commands):
        return [self.workers[i].run_round(horizon, mailbox)
                for i, horizon, mailbox in commands]

    def finish(self):
        results = [w.finish() for w in self.workers]
        events = [w.engine.events_processed for w in self.workers]
        for w in self.workers:
            w.engine.dispose()
        return results, events


def _process_worker_main(conn, spec: PartitionSpec, index: int, seed: int,
                         out_lookahead: Dict[str, float]) -> None:
    """Child-process loop: build once, then serve rounds off the pipe.

    The cyclic GC is paused for the whole run and the engine disposed
    at exit — the same policy as the single-core trial path
    (:meth:`repro.mpichv.runtime.VclRuntime.dispose`), applied per
    worker.
    """
    try:
        with gc_paused():
            worker = _Worker(spec, index, seed, out_lookahead)
            conn.send(("ready", worker.engine.peek()))
            while True:
                cmd, payload = conn.recv()
                if cmd == "round":
                    horizon, mailbox = payload
                    conn.send(("reply", worker.run_round(horizon, mailbox)))
                elif cmd == "finish":
                    conn.send(("result", (worker.finish(),
                                          worker.engine.events_processed)))
                    worker.engine.dispose()
                    return
                else:       # pragma: no cover - defensive
                    raise RuntimeError(f"unknown command {cmd!r}")
    except BaseException as err:   # ship the failure, don't hang the parent
        try:
            conn.send(("error", f"{type(err).__name__}: {err}"))
        except (OSError, ValueError):
            pass
        raise
    finally:
        conn.close()


class _ProcessTransport(_Transport):
    """One forked OS process per partition; commands over pipes.

    Rounds are issued to every scheduled worker before any reply is
    awaited, so partitions execute their windows concurrently — this
    is where the multicore scaling comes from.
    """

    def __init__(self, coordinator: _Coordinator, seed: int):
        import multiprocessing
        ctx = multiprocessing.get_context("fork")
        self.conns = []
        self.procs = []
        try:
            for i, spec in enumerate(coordinator.partitions):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_process_worker_main,
                    args=(child, spec, i, seed,
                          coordinator.out_lookahead_for(i)),
                    daemon=True)
                proc.start()
                child.close()
                self.conns.append(parent)
                self.procs.append(proc)
        except BaseException:
            self.close()
            raise
        self._initial = [self._expect(i, "ready") for i in
                         range(len(self.conns))]

    def _expect(self, index: int, kind: str):
        tag, payload = self.conns[index].recv()
        if tag == "error":
            self.close()
            raise RuntimeError(f"partition worker {index} failed: {payload}")
        if tag != kind:     # pragma: no cover - defensive
            self.close()
            raise RuntimeError(f"expected {kind!r} from worker {index}, "
                               f"got {tag!r}")
        return payload

    def poll_next_times(self) -> List[float]:
        return list(self._initial)

    def run_round(self, commands):
        for i, horizon, mailbox in commands:
            self.conns[i].send(("round", (horizon, mailbox)))
        return [self._expect(i, "reply") for i, _h, _m in commands]

    def finish(self):
        for conn in self.conns:
            conn.send(("finish", None))
        payloads = [self._expect(i, "result")
                    for i in range(len(self.conns))]
        self.close()
        return [p[0] for p in payloads], [p[1] for p in payloads]

    def close(self) -> None:
        for conn in getattr(self, "conns", []):
            try:
                conn.close()
            except OSError:
                pass
        for proc in getattr(self, "procs", []):
            proc.join(timeout=5)
            if proc.is_alive():     # pragma: no cover - defensive
                proc.terminate()


def fork_available() -> bool:
    """Can this platform run the ``processes`` backend?"""
    import multiprocessing
    return "fork" in multiprocessing.get_all_start_methods()


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

class ParallelSimulation:
    """A partitioned simulation ready to run.

    >>> sim = ParallelSimulation(partitions, channels, seed=7)
    >>> results = sim.run()          # dict: partition name -> finish()
    >>> sim.stats.null_messages      # synchronization effort
    """

    def __init__(self, partitions: Sequence[PartitionSpec],
                 channels: Sequence[ChannelSpec],
                 seed: int = 0, backend: str = "auto",
                 until: Optional[float] = None):
        if backend not in ("auto", "inline", "processes"):
            raise ValueError(f"unknown backend {backend!r}")
        if backend == "auto":
            backend = ("processes"
                       if len(partitions) > 1 and fork_available()
                       else "inline")
        if backend == "processes" and not fork_available():
            raise RuntimeError("the processes backend needs the fork start "
                               "method; use backend='inline'")
        self.backend = backend
        self.seed = seed
        self.until = until
        self._coordinator = _Coordinator(partitions, channels, backend)
        self.stats = self._coordinator.stats
        self.results: Optional[Dict[str, Any]] = None

    def run(self) -> Dict[str, Any]:
        if self.backend == "processes":
            transport: _Transport = _ProcessTransport(self._coordinator,
                                                      self.seed)
        else:
            transport = _InlineTransport(self._coordinator, self.seed)
        try:
            self.results = self._coordinator.run(transport, until=self.until)
        except BaseException:
            if isinstance(transport, _ProcessTransport):
                transport.close()
            raise
        return self.results


def run_partitioned(partitions: Sequence[PartitionSpec],
                    channels: Sequence[ChannelSpec],
                    seed: int = 0, backend: str = "auto",
                    until: Optional[float] = None
                    ) -> Tuple[Dict[str, Any], ParallelStats]:
    """One-shot helper: build, run, return ``(results, stats)``."""
    sim = ParallelSimulation(partitions, channels, seed=seed,
                             backend=backend, until=until)
    results = sim.run()
    return results, sim.stats
