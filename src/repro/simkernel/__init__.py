"""Deterministic discrete-event simulation kernel.

This package is the foundation every other subsystem builds on.  It
provides a virtual clock, slotted event dispatch (a heap of distinct
``(time, priority)`` slots — see :mod:`repro.simkernel.engine` for the
scale fast path), coroutine-style simulated
processes (generators that ``yield`` awaitable events), timeouts,
condition composition (:class:`AnyOf`/:class:`AllOf`), interrupt
delivery, and simple queues (:class:`Store`).

The design follows the classic process-interaction style (as in SimPy),
but is implemented from scratch so the repository is self-contained and
fully deterministic: two runs with the same seed produce the same event
order, including tie-breaking between events scheduled at the same
instant.
"""

from repro.simkernel.engine import Engine, SimTimeoutError
from repro.simkernel.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    ProcessKilled,
    Timeout,
)
from repro.simkernel.process import Process, PCB
from repro.simkernel.store import Store, StoreClosed

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "ProcessKilled",
    "Process",
    "PCB",
    "Store",
    "StoreClosed",
    "SimTimeoutError",
]
