"""The discrete-event engine: virtual clock + deterministic event heap."""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.simkernel.events import (
    AllOf,
    AnyOf,
    Event,
    Timeout,
    PRIORITY_NORMAL,
)


class SimTimeoutError(Exception):
    """Raised by :meth:`Engine.run` when ``until`` elapses and
    ``raise_on_timeout`` is set — used by test helpers that consider a
    non-finished simulation an error."""


class Engine:
    """Owns the virtual clock and the pending-event heap.

    Determinism guarantee: events scheduled at the same simulated time
    run in (priority, insertion-order) order, and the only source of
    randomness is :attr:`random`, seeded at construction.  Two engines
    built with the same seed replay identical histories.
    """

    def __init__(self, seed: int = 0, trace=None):
        self.now: float = 0.0
        self.random = random.Random(seed)
        self.seed = seed
        #: heap entries: (time, priority, seq, payload) where payload is
        #: either an Event to process or a bare callable.
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._seq = 0
        #: optional repro.analysis.traces.Trace sink shared by subsystems
        self.trace = trace
        #: number of events processed so far (cheap progress metric)
        self.events_processed = 0
        self._stopped = False

    # -- construction helpers ---------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: Optional[str] = None) -> Timeout:
        """Create an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value=value, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def process(self, gen: Generator, name: Optional[str] = None):
        """Spawn a simulated process from generator ``gen``."""
        from repro.simkernel.process import Process

        return Process(self, gen, name=name)

    # -- scheduling internals ------------------------------------------------
    def _enqueue_event(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, priority, self._seq, event))

    def _enqueue_call(self, fn: Callable[[], None], delay: float = 0.0,
                      priority: int = PRIORITY_NORMAL) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, priority, self._seq, fn))

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Schedule a bare callable at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise ValueError(f"call_at past time {when} < now {self.now}")
        self._enqueue_call(fn, delay=when - self.now)

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule a bare callable ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._enqueue_call(fn, delay=delay)

    # -- main loop ----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next pending event, or ``float('inf')``."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one heap entry, advancing the clock."""
        when, _prio, _seq, payload = heapq.heappop(self._heap)
        assert when >= self.now, "event heap went backwards"
        self.now = when
        self.events_processed += 1
        if isinstance(payload, Event):
            payload._process()
        else:
            payload()

    def run(self, until: Optional[float] = None, *, raise_on_timeout: bool = False,
            max_events: Optional[int] = None) -> float:
        """Run until the heap drains or the clock reaches ``until``.

        Returns the final simulated time.  If ``until`` is hit with work
        still pending, the clock is advanced to exactly ``until`` (so a
        subsequent ``run`` continues cleanly).

        The loop body is the simulator's hottest path (every message,
        timer and context switch of a trial passes through it), so the
        heap pop and dispatch are inlined here with hoisted locals
        rather than delegating to :meth:`step`; semantics are identical
        (``step`` remains the single-step API).
        """
        self._stopped = False
        heap = self._heap
        pop = heapq.heappop
        event_cls = Event
        limit = float("inf") if until is None else until
        processed = 0
        try:
            while heap and not self._stopped:
                if heap[0][0] > limit:
                    self.now = until
                    if raise_on_timeout:
                        raise SimTimeoutError(f"simulation exceeded t={until}")
                    return self.now
                when, _prio, _seq, payload = pop(heap)
                self.now = when
                processed += 1
                if isinstance(payload, event_cls):
                    payload._process()
                else:
                    payload()
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self.events_processed += processed
        if until is not None and not heap and self.now < until:
            self.now = until
        return self.now

    def stop(self) -> None:
        """Make :meth:`run` return after the current event."""
        self._stopped = True

    # -- tracing ------------------------------------------------------------
    def log(self, kind: str, **fields) -> None:
        """Record a structured trace record if a trace sink is attached."""
        if self.trace is not None:
            self.trace.record(self.now, kind, **fields)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<Engine t={self.now} pending={len(self._heap)}>"
