"""The discrete-event engine: virtual clock + slotted event dispatch.

Scheduling structure (the scale-out fast path): payloads are bucketed
into *slots* keyed by ``(time, priority)``; a heap orders the distinct
slot keys and a plain FIFO list holds each slot's payloads.  In real
deployments the overwhelming majority of events share their instant
with earlier ones (same-time cascades: message deliveries, process
wakeups, the periodic checkpoint/heartbeat grids — measured ~85 % at
128 ranks), so most enqueues are a dict lookup + list append instead
of an ``O(log n)`` heap push, and the heap holds one entry per
*distinct* instant rather than one per event.  Dispatch drains a slot
as a batch.  Ordering is bit-identical to the classic one-entry-per-
event heap: globally ``(time, priority, insertion order)`` — FIFO
within a slot *is* insertion order, and a payload that schedules work
at an earlier-sorting key mid-slot preempts the batch so the new slot
runs first (guarded by golden digests in
``tests/test_engine_fastpath.py``).
"""

from __future__ import annotations

import gc
import heapq
import math
import random
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Deque, Dict, Generator, Iterable, List, Optional, Tuple

from repro.simkernel.events import (
    AllOf,
    AnyOf,
    Event,
    Timeout,
    PRIORITY_NORMAL,
)
from repro.simkernel.process import Process


class SimTimeoutError(Exception):
    """Raised by :meth:`Engine.run` when ``until`` elapses and
    ``raise_on_timeout`` is set — used by test helpers that consider a
    non-finished simulation an error."""


class _NullSpan:
    """No-op span handle returned by :meth:`Engine.span` when no
    observability recorder is attached.  The simkernel defines its own
    (rather than importing :data:`repro.obs.NULL_SPAN`) so the engine
    stays importable without the obs package and the off-path cost is
    one attribute test."""

    __slots__ = ()
    closed = True

    def close(self, **fields):
        return self

    def close_at(self, t1, **fields):
        return self


_NULL_SPAN = _NullSpan()


class TimerHandle:
    """A cancellable scheduled callback (see :meth:`Engine.timer`).

    ``cancel()`` is an O(1) tombstone: the slot table is never
    searched or repaired — the handle simply dispatches as a no-op and
    is dropped.  Cancelling a batch of K timers therefore costs O(K)
    total, which is what makes mass-cancel patterns (a rank's periodic
    timers on failure) cheap at 512 ranks.
    """

    __slots__ = ("fn", "cancelled")

    def __init__(self, fn: Callable[[], None]):
        self.fn: Optional[Callable[[], None]] = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        self.fn = None          # drop the closure immediately

    def __call__(self) -> None:
        if not self.cancelled:
            self.fn()


class PeriodicTimer:
    """A self-rescheduling timer (see :meth:`Engine.periodic`).

    Each firing costs one slot insertion; on the shared tick grids of
    periodic events (heartbeats, checkpoint timers) every rank's firing
    lands in the *same* slot, so a 512-rank grid is one heap entry per
    tick, not 512.  ``cancel()`` is the same O(1) tombstone as
    :class:`TimerHandle`.
    """

    __slots__ = ("engine", "period", "fn", "cancelled")

    def __init__(self, engine: "Engine", period: float, fn: Callable[[], None]):
        self.engine = engine
        self.period = period
        self.fn: Optional[Callable[[], None]] = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        self.fn = None

    def __call__(self) -> None:
        if self.cancelled:
            return
        self.fn()
        if not self.cancelled:      # fn may have cancelled us
            self.engine._enqueue_call(self, delay=self.period)


@contextmanager
def gc_paused():
    """Disable the cyclic GC for the duration of a simulation.

    Big deployments allocate millions of interlinked objects (events,
    processes, sockets); the generational collector re-scans that live
    graph over and over, dominating wall-clock (a faulted 512-rank
    trial drops ~3x with collection paused).  On exit the collector is
    restored; reclamation of the finished deployment is the caller's
    concern — the trial throughput path breaks its cycles explicitly
    (:meth:`repro.mpichv.runtime.VclRuntime.dispose`, refcount-cheap),
    and anyone else just lets the re-enabled ambient GC get to it.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


class Engine:
    """Owns the virtual clock and the pending-event slot table.

    Determinism guarantee: events scheduled at the same simulated time
    run in (priority, insertion-order) order, and the only source of
    randomness is :attr:`random`, seeded at construction.  Two engines
    built with the same seed replay identical histories.
    """

    def __init__(self, seed: int = 0, trace=None):
        self.now: float = 0.0
        self.random = random.Random(seed)
        self.seed = seed
        #: heap of distinct slot keys ``(time, priority)`` — one entry
        #: per *live slot*, not per event
        self._heap: List[Tuple[float, int]] = []
        #: slot table: ``(time, priority) -> deque of payloads`` in
        #: insertion (FIFO) order; payloads are Events or bare callables
        self._slots: Dict[Tuple[float, int], Deque[Any]] = {}
        #: key of the slot currently being drained by :meth:`run`
        self._current_key: Optional[Tuple[float, int]] = None
        #: set when a payload schedules an earlier-sorting slot (or by
        #: :meth:`stop`): the current batch yields after this payload
        self._preempt = False
        #: the front lane: keys of live slots *not* in the heap — slots
        #: created at the current instant ahead of the one being
        #: drained (an urgent wakeup preempting a normal batch), plus
        #: interrupted drains.  Preemption ping-pong between the urgent
        #: and normal slot of one instant is the single most common
        #: dispatch pattern (every message delivery wakes its process
        #: mid-cascade), and the front lane keeps it O(1) instead of a
        #: full-depth heap push + pop per wakeup.  At most a few
        #: entries; always time == now.
        self._front: List[Tuple[float, int]] = []
        #: optional repro.analysis.traces.Trace sink shared by subsystems
        self.trace = trace
        #: coverage probe labels hit during this run — a plain set, so
        #: a probe on a hot path costs one set-add; folded into the
        #: trial's coverage signature by the runtime (see
        #: :mod:`repro.analysis.coverage`)
        self.coverage: set = set()
        #: number of events processed so far (cheap progress metric)
        self.events_processed = 0
        #: times a dispatch came from the front lane instead of the heap
        #: (execution metadata — varies with partitioning, never exported
        #: into the deterministic obs document)
        self.front_lane_hits = 0
        #: slot visits by the dispatch loops; with
        #: :attr:`events_processed` this gives the mean batch size per
        #: slot — the slot-table occupancy.  Execution metadata, like
        #: :attr:`front_lane_hits`.
        self.slots_drained = 0
        #: optional repro.obs.Obs recorder; None keeps :meth:`span` a
        #: single attribute test on the hot path
        self.obs = None
        self._stopped = False

    def cover(self, label: str) -> None:
        """Record that execution reached the probe point ``label``."""
        self.coverage.add(label)

    # -- construction helpers ---------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: Optional[str] = None) -> Timeout:
        """Create an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value=value, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def process(self, gen: Generator, name: Optional[str] = None):
        """Spawn a simulated process from generator ``gen``."""
        return Process(self, gen, name=name)

    # -- scheduling internals ------------------------------------------------
    # Both enqueue paths insert into the slot table.  A fresh slot
    # sorting before the one currently being drained must run first, so
    # its creation flags the run loop to yield the current batch.  (An
    # *existing* earlier slot is impossible mid-drain — the heap pop
    # already returned the smallest key — so only slot creation can
    # preempt.)  The two methods are deliberately duplicated rather
    # than sharing a helper: they are the enqueue hot path.

    def _enqueue_event(self, event: Event, priority: int, delay: float = 0.0) -> None:
        key = (self.now + delay, priority)
        slots = self._slots
        slot = slots.get(key)
        if slot is None:
            slots[key] = deque((event,))
            cur = self._current_key
            if cur is not None and key < cur:
                # Earlier-sorting slot at the current instant: front
                # lane (never the heap) + yield the batch being drained.
                self._front.append(key)
                self._preempt = True
            else:
                heapq.heappush(self._heap, key)
        else:
            slot.append(event)

    def _enqueue_call(self, fn: Callable[[], None], delay: float = 0.0,
                      priority: int = PRIORITY_NORMAL) -> None:
        key = (self.now + delay, priority)
        slots = self._slots
        slot = slots.get(key)
        if slot is None:
            slots[key] = deque((fn,))
            cur = self._current_key
            if cur is not None and key < cur:
                self._front.append(key)
                self._preempt = True
            else:
                heapq.heappush(self._heap, key)
        else:
            slot.append(fn)

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Schedule a bare callable at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise ValueError(f"call_at past time {when} < now {self.now}")
        self._enqueue_call(fn, delay=when - self.now)

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule a bare callable ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._enqueue_call(fn, delay=delay)

    def timer(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        """Like :meth:`call_later`, but returns a cancellable handle.

        Cancellation is an O(1) tombstone (see :class:`TimerHandle`).
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        handle = TimerHandle(fn)
        self._enqueue_call(handle, delay=delay)
        return handle

    def periodic(self, period: float, fn: Callable[[], None],
                 first: Optional[float] = None) -> PeriodicTimer:
        """Run ``fn`` every ``period`` seconds until the handle is
        cancelled; ``first`` overrides the delay before the first
        firing (default: one full period)."""
        if period <= 0:
            raise ValueError(f"non-positive period {period}")
        if first is not None and first < 0:
            raise ValueError(f"negative first delay {first}")
        handle = PeriodicTimer(self, period, fn)
        self._enqueue_call(handle, delay=period if first is None else first)
        return handle

    # -- main loop ----------------------------------------------------------
    def _next_key(self) -> Optional[Tuple[float, int]]:
        """Pop the earliest pending slot key (front lane or heap)."""
        front = self._front
        heap = self._heap
        if front:
            if len(front) > 1:
                front.sort()
            if heap and heap[0] < front[0]:
                return heapq.heappop(heap)
            self.front_lane_hits += 1
            return front.pop(0)
        if heap:
            return heapq.heappop(heap)
        return None

    def peek(self) -> float:
        """Time of the next pending event, or ``float('inf')``."""
        best = self._heap[0][0] if self._heap else float("inf")
        for key in self._front:
            if key[0] < best:
                best = key[0]
        # Mid-drain, the current slot's undrained tail is in neither
        # the heap nor the front lane — but it is still pending.
        cur = self._current_key
        if cur is not None and cur[0] < best and self._slots.get(cur):
            best = cur[0]
        return best

    def step(self) -> None:
        """Process exactly one payload, advancing the clock.

        This is the single-step API (tests and debuggers); the batch
        loop in :meth:`run` is the hot path.
        """
        key = self._next_key()
        if key is None:
            raise IndexError("step() on an empty engine")
        when = key[0]
        assert when >= self.now, "event heap went backwards"
        slot = self._slots[key]
        payload = slot.popleft()
        # Restore the key/slot invariant *before* dispatching: the
        # payload may schedule at this same instant, and must find
        # either a live (keyed) slot or none at all.
        if slot:
            heapq.heappush(self._heap, key)
        else:
            del self._slots[key]
        self.now = when
        self.events_processed += 1
        self.slots_drained += 1
        payload()               # Events are callable (see events.py)

    def run(self, until: Optional[float] = None, *, raise_on_timeout: bool = False,
            max_events: Optional[int] = None) -> float:
        """Run until the slots drain or the clock reaches ``until``.

        Returns the final simulated time.  If ``until`` is hit with work
        still pending, the clock is advanced to exactly ``until`` (so a
        subsequent ``run`` continues cleanly).

        The loop body is the simulator's hottest path (every message,
        timer and context switch of a trial passes through it): one
        heap pop fetches a whole slot, whose payloads dispatch as a
        batch with hoisted locals.  Mid-batch interruptions (a payload
        scheduling an earlier-sorting slot, :meth:`stop`, the
        ``max_events`` budget) push the undrained tail back, keeping
        the global order exactly ``(time, priority, insertion order)``.
        """
        self._stopped = False
        heap = self._heap
        front = self._front
        slots = self._slots
        pop = heapq.heappop
        limit = float("inf") if until is None else until
        budget = float("inf") if max_events is None else max_events
        processed = 0
        drained = 0
        try:
            while not self._stopped:
                # -- select the earliest slot (front lane, then heap) --
                if front:
                    if len(front) > 1:
                        front.sort()
                    # Front keys are at the current instant, so they
                    # can never overshoot ``limit``; only check the
                    # heap key against the front minimum.
                    if heap and heap[0] < front[0]:
                        key = pop(heap)
                    else:
                        key = front.pop(0)
                        self.front_lane_hits += 1
                    when = key[0]
                elif heap:
                    key = heap[0]
                    when = key[0]
                    if when > limit:
                        self.now = until
                        if raise_on_timeout:
                            raise SimTimeoutError(
                                f"simulation exceeded t={until}")
                        return self.now
                    pop(heap)
                else:
                    break
                slot = slots[key]
                drained += 1
                self.now = when
                self._current_key = key
                # The slot being drained is the globally earliest: any
                # stale preempt request is satisfied by starting it.
                self._preempt = False
                # The slot stays live in the table while draining, so
                # same-instant payloads scheduled by a dispatch append
                # straight onto the deque and drain in this batch —
                # exactly their (time, priority, insertion) rank.
                while True:
                    # Events are callable (``Event.__call__`` aliases
                    # ``_process``), so every payload dispatches the
                    # same way — no per-event type check.
                    payload = slot.popleft()
                    processed += 1
                    payload()
                    if not slot:
                        del slots[key]
                        break
                    # Interrupt checks run only *between* payloads; an
                    # undrained tail parks its key in the front lane
                    # (O(1), never a heap op or list copy).  stop()
                    # sets the preempt flag, so two checks suffice.
                    if self._preempt or processed >= budget:
                        front.append(key)
                        break
                self._current_key = None
                if processed >= budget:
                    break
        finally:
            # A payload that raised leaves its slot undrained: park the
            # key so the engine stays consistent for a subsequent run.
            ck = self._current_key
            if ck is not None and slots.get(ck) and ck not in front:
                front.append(ck)
            elif ck is not None and ck in slots and not slots[ck]:
                del slots[ck]       # fully drained when the payload raised
            self._current_key = None
            self._preempt = False
            self.events_processed += processed
            self.slots_drained += drained
        if until is not None and not heap and not front and self.now < until:
            self.now = until
        return self.now

    def run_horizon(self, horizon: float, *,
                    max_events: Optional[int] = None) -> float:
        """Run every pending payload *strictly before* ``horizon``.

        This is the conservative gate of partitioned execution (see
        :mod:`repro.simkernel.parallel`): a partition granted a safe
        horizon ``H`` may execute events with ``t < H`` — an event at
        exactly ``H`` could still be preempted by a cross-partition
        message arriving at ``H``, so the gate is exclusive.  The
        implementation reuses :meth:`run`'s inclusive ``until`` bound
        with the largest float below ``horizon``, so the hot loop is
        byte-identical to the reference path.  Dispatch order within
        the horizon is exactly :meth:`run`'s
        ``(time, priority, insertion order)``.
        """
        if math.isinf(horizon):
            return self.run(max_events=max_events)
        return self.run(until=math.nextafter(horizon, -math.inf),
                        max_events=max_events)

    def stop(self) -> None:
        """Make :meth:`run` return after the current event."""
        self._stopped = True
        self._preempt = True        # yield the current batch immediately

    def dispose(self) -> None:
        """Teardown-only: drop all pending work and the trace sink so
        the finished simulation's object graph loses its scheduler
        roots (see ``VclRuntime.dispose``)."""
        self._slots.clear()
        self._heap.clear()
        self._front.clear()
        self.trace = None
        self.obs = None

    # -- tracing ------------------------------------------------------------
    def log(self, kind: str, **fields) -> None:
        """Record a structured trace record if a trace sink is attached."""
        if self.trace is not None:
            self.trace.record(self.now, kind, **fields)

    def span(self, kind: str, lane: str = "sim", **fields):
        """Open an observability span at the current instant.

        With no :class:`repro.obs.Obs` recorder attached this is a
        single attribute test returning a shared no-op handle — the
        off switch that keeps instrumented call sites free on the
        dispatch hot path.  Opening a span never schedules events,
        never logs to the trace, and never consumes :attr:`random`, so
        the simulated history is identical with observation on or off.
        """
        obs = self.obs
        if obs is None:
            return _NULL_SPAN
        return obs.open(kind, lane, self.now, fields)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        pending = sum(len(s) for s in self._slots.values())
        return f"<Engine t={self.now} pending={pending}>"
