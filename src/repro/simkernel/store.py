"""FIFO message stores (the kernel-level queue behind sockets).

A :class:`Store` decouples producers and consumers: ``put`` never
blocks (infinite capacity unless bounded), ``get`` returns an Event the
consumer yields on.  Closing a store wakes every pending getter with
:class:`StoreClosed` and makes further gets fail immediately — this is
the primitive the socket layer maps TCP connection-closure onto.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.simkernel.events import Event


class StoreClosed(Exception):
    """The store was closed; no further items will ever arrive."""


class Store:
    """Deterministic FIFO queue of items with event-based ``get``."""

    def __init__(self, engine, name: Optional[str] = None, capacity: Optional[int] = None):
        self.engine = engine
        self.name = name or "store"
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.closed = False

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Append ``item``; wakes the oldest waiting getter if any.

        Raises :class:`StoreClosed` if the store has been closed and
        ``ValueError`` if a finite capacity would be exceeded.
        """
        if self.closed:
            raise StoreClosed(f"put on closed store {self.name!r}")
        if self.capacity is not None and len(self.items) >= self.capacity:
            raise ValueError(f"store {self.name!r} over capacity {self.capacity}")
        # Hand the item straight to a waiting getter, preserving FIFO
        # order between queued items and queued getters.
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self.items.append(item)

    def get(self) -> Event:
        """Return an event that yields the next item (or fails Closed)."""
        # Direct construction with the store's own name: get() runs
        # once per message and a per-call f-string label would be pure
        # allocation overhead on the hot path.
        ev = Event(self.engine, name=self.name)
        if self.items:
            ev.succeed(self.items.popleft())
        elif self.closed:
            ev.fail(StoreClosed(f"get on closed store {self.name!r}"))
        else:
            self._getters.append(ev)
        return ev

    def get_nowait(self) -> Any:
        """Pop an item immediately; raises ``IndexError`` if empty."""
        return self.items.popleft()

    def close(self) -> None:
        """Close: drained items stay readable=False (we fail getters).

        Matching TCP reset-on-kill semantics: pending and future reads
        fail with :class:`StoreClosed` even if unread bytes existed.
        """
        if self.closed:
            return
        self.closed = True
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.fail(StoreClosed(f"store {self.name!r} closed"))
        self.items.clear()

    def dispose(self) -> None:
        """Drop buffered items and waiting getters (cycle-bearing refs)
        without the close() semantics — teardown only."""
        self.items.clear()
        self._getters.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Store {self.name!r} items={len(self.items)} "
                f"getters={len(self._getters)} closed={self.closed}>")
