"""Coroutine-style simulated processes.

A :class:`Process` drives a Python generator: the generator ``yield``\\ s
:class:`~repro.simkernel.events.Event` objects and is resumed with the
event's value (or has the event's exception thrown into it).  A Process
is itself an Event that triggers when the generator finishes, so
processes can wait on each other.

Processes support three control verbs needed by the FAIL debugger
model:

``interrupt(cause)``
    Throw :class:`~repro.simkernel.events.Interrupt` into the generator
    at the current simulated instant.

``suspend()`` / ``resume()``
    Freeze delivery of wakeups (events keep triggering but are queued),
    exactly like stopping a task under a debugger: the rest of the
    world keeps moving.

``kill()``
    Terminate immediately without executing any further generator code
    (modelling ``kill -9``; OS-level cleanup like socket closure is the
    responsibility of the :mod:`repro.cluster.unixproc` layer).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from repro.simkernel.events import Event, Interrupt, PRIORITY_URGENT

#: process lifecycle states
NEW = "new"
RUNNING = "running"
SUSPENDED = "suspended"
DONE = "done"
FAILED = "failed"
KILLED = "killed"


class Process(Event):
    """A simulated process wrapping generator ``gen``.

    The completion event succeeds with the generator's return value on
    normal exit, succeeds with ``None`` if killed, and *fails* with the
    escaping exception if the generator raised.
    """

    __slots__ = (
        "gen",
        "pid",
        "state",
        "result",
        "error",
        "_target",
        "_target_cb",
        "_inbox",
        "_dispatch_scheduled",
        "_started",
    )

    _next_pid = [1]

    def __init__(self, engine, gen: Generator, name: Optional[str] = None):
        super().__init__(engine, name=name or getattr(gen, "__name__", "process"))
        if not hasattr(gen, "send"):
            raise TypeError(f"Process requires a generator, got {gen!r}")
        self.gen = gen
        self.pid = Process._next_pid[0]
        Process._next_pid[0] += 1
        self.state = NEW
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._target: Optional[Event] = None
        self._target_cb = None
        self._inbox = deque()
        self._dispatch_scheduled = False
        self._started = False
        engine._enqueue_call(self._start)

    # -- public inspection ---------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the generator can still run."""
        return self.state in (NEW, RUNNING, SUSPENDED)

    @property
    def is_suspended(self) -> bool:
        return self.state == SUSPENDED

    # -- lifecycle -------------------------------------------------------------
    def _start(self) -> None:
        if not self.alive:
            return
        self._started = True
        if self.state == SUSPENDED:
            # Suspended before ever running (debugger attach-at-launch):
            # queue the initial step for delivery on resume.
            self._inbox.appendleft(("start", None))
            return
        self.state = RUNNING
        self._step(kind="start")

    def _step(self, kind: str, event: Optional[Event] = None,
              exc: Optional[BaseException] = None) -> None:
        """Advance the generator by one yield."""
        try:
            # event wakeups first: they outnumber start/throw ~10:1
            if event is not None:
                if event._exc is None:
                    target = self.gen.send(event._value)
                else:
                    target = self.gen.throw(event.exception)
            elif kind == "start":
                target = next(self.gen)
            else:           # kind == "throw"
                target = self.gen.throw(exc)
        except StopIteration as stop:
            self._finish_ok(getattr(stop, "value", None))
            return
        except BaseException as err:  # noqa: BLE001 - process crash path
            self._finish_err(err)
            return
        if not isinstance(target, Event):
            self._finish_err(TypeError(f"process {self.name!r} yielded non-Event {target!r}"))
            return
        self._wait_on(target)

    def _wait_on(self, target: Event) -> None:
        self._target = target

        def _cb(ev: Event, _self=self, _tgt=target) -> None:
            if _self._target is _tgt:
                _self._target = None
                _self._target_cb = None
            _self._deliver(("event", ev))

        self._target_cb = _cb
        target.add_callback(_cb)

    def _detach(self) -> None:
        if self._target is not None and self._target_cb is not None:
            self._target.remove_callback(self._target_cb)
        self._target = None
        self._target_cb = None

    def _finish_ok(self, value: Any) -> None:
        self.state = DONE
        self.result = value
        self._detach()
        if not self.triggered:
            self.succeed(value)

    def _finish_err(self, err: BaseException) -> None:
        self.state = FAILED
        self.error = err
        self._detach()
        failures = getattr(self.engine, "process_failures", None)
        if failures is None:
            failures = []
            self.engine.process_failures = failures
        failures.append(self)
        if not self.triggered:
            self.fail(err)

    # -- delivery machinery -------------------------------------------------
    def _deliver(self, item) -> None:
        # _maybe_dispatch inlined: one delivery per message makes this
        # the hottest process entry point
        self._inbox.append(item)
        if (self.state in (NEW, RUNNING)
                and not self._dispatch_scheduled and self._started):
            self._dispatch_scheduled = True
            self.engine._enqueue_call(self._dispatch, priority=PRIORITY_URGENT)

    def _maybe_dispatch(self) -> None:
        # ``state in (NEW, RUNNING)`` == alive and not suspended; the
        # checks are inlined (no property call) — this runs once per
        # delivered event, the simulator's hottest process path.
        if (self.state in (NEW, RUNNING) and self._inbox
                and not self._dispatch_scheduled and self._started):
            self._dispatch_scheduled = True
            self.engine._enqueue_call(self._dispatch, priority=PRIORITY_URGENT)

    def _dispatch(self) -> None:
        self._dispatch_scheduled = False
        if self.state not in (NEW, RUNNING) or not self._inbox:
            return
        kind, payload = self._inbox.popleft()
        if kind == "event":
            self._step(kind="event", event=payload)
        elif kind == "start":
            self._step(kind="start")
        else:  # interrupt
            self._step(kind="throw", exc=Interrupt(payload))
        self._maybe_dispatch()

    # -- control verbs ---------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the generator (async-safe)."""
        if not self.alive:
            return
        self._detach()
        self._deliver(("interrupt", cause))

    def suspend(self) -> None:
        """Debugger 'stop': freeze wakeup delivery; world keeps moving."""
        if self.alive:
            self.state = SUSPENDED

    def resume(self) -> None:
        """Debugger 'continue': deliver any wakeups queued while stopped."""
        if self.state == SUSPENDED:
            self.state = RUNNING
            self._maybe_dispatch()

    def kill(self) -> None:
        """Terminate without executing further generator code."""
        if not self.alive:
            return
        self.state = KILLED
        self._detach()
        self._inbox.clear()
        # Close without running finally-blocks' sim-yields: generator
        # close() raises GeneratorExit at the suspension point; any
        # attempt to yield during cleanup raises RuntimeError which we
        # swallow — matching SIGKILL's "no user-space cleanup".
        try:
            self.gen.close()
        except (RuntimeError, ValueError):
            # ValueError: closing a generator that is currently
            # executing (a thread killing its own process); the frame
            # finishes its current step and never resumes.
            pass
        if not self.triggered:
            self.succeed(None)

    def dispose(self) -> None:
        """Break this (finished) process's reference cycles — the
        generator frame, the waited-on event, queued wakeups — so
        teardown can reclaim it by refcount (see
        ``VclRuntime.dispose``).  The process is unusable afterwards."""
        self.gen = None
        self._target = None
        self._target_cb = None
        self._inbox.clear()
        self.callbacks = None

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<Process pid={self.pid} {self.name!r} {self.state}>"


#: Backwards-friendly alias; a Process object *is* its own control block.
PCB = Process
