"""A tiny name -> value registry shared by the plugin systems.

Both the fault-tolerance protocols (:mod:`repro.mpichv.protocols`) and
the workloads (:mod:`repro.workloads`) are registered by name and
looked up by the experiment machinery; this class keeps their
registration semantics and error shapes identical.
"""

from __future__ import annotations

from typing import Any, Dict, List


class Registry:
    """Named plugin slots with guarded registration and helpful errors."""

    def __init__(self, kind: str):
        self.kind = kind
        self._items: Dict[str, Any] = {}

    def register(self, name: str, value: Any, replace: bool = False) -> Any:
        if name in self._items and not replace:
            raise ValueError(f"{self.kind} {name!r} already registered")
        self._items[name] = value
        return value

    def unregister(self, name: str) -> None:
        self._items.pop(name, None)

    def available(self) -> List[str]:
        return sorted(self._items)

    def get(self, name: str) -> Any:
        try:
            return self._items[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r} (registered: "
                f"{', '.join(self.available())})") from None
