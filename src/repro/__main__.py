"""Command-line entry point: ``python -m repro <experiment> [...]``.

Dispatches to the per-figure experiment drivers; each accepts its own
flags (``--reps``, ``--procs``, ``--fixed``, …) plus the shared trial
execution flags (``--workers N``, ``--cache-dir DIR``, ``--no-cache``)
from :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import sys

COMMANDS = {
    "fig5": ("repro.experiments.fig5_frequency", "impact of fault frequency"),
    "fig6": ("repro.experiments.fig6_scale", "impact of scale"),
    "fig7": ("repro.experiments.fig7_simultaneous", "simultaneous faults"),
    "fig9": ("repro.experiments.fig9_synchronized", "synchronized faults"),
    "fig11": ("repro.experiments.fig11_state_sync",
              "state-synchronized faults"),
    "table1": ("repro.experiments.table1_tools", "tool comparison table"),
    "compare-protocols": ("repro.experiments.compare_protocols",
                          "vcl vs v2 vs v1 under identical scenarios"),
    "explore": ("repro.explore.campaign",
                "generated fault scenarios + oracles + shrinking"),
    "net-sensitivity": ("repro.experiments.net_sensitivity",
                        "protocol x topology x oversubscription sweep"),
    "scale-sweep": ("repro.experiments.scale_sweep",
                    "protocol x ranks x ckpt-server shards, up to 512 ranks"),
    "timeline": ("repro.experiments.timeline_cmd",
                 "one observed trial: swimlanes, phase table, Chrome trace"),
    "trace-diff": ("repro.experiments.trace_diff_cmd",
                   "align two trials' spans + recovery critical paths"),
    "obs-report": ("repro.experiments.obs_report_cmd",
                   "campaign rollup: OpenMetrics + HTML from a result store"),
}

#: legacy spellings kept working
ALIASES = {
    "compare": "compare-protocols",
}


def usage() -> str:
    lines = ["usage: python -m repro <command> [options]", "", "commands:"]
    for name, (_module, blurb) in COMMANDS.items():
        lines.append(f"  {name:<18} {blurb}")
    lines.append("")
    lines.append("shared flags: --workers N  --cache-dir DIR  --no-cache")
    lines.append("pass --help after a command for its options")
    return "\n".join(lines)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(usage())
        return 0
    command = argv.pop(0)
    command = ALIASES.get(command, command)
    entry = COMMANDS.get(command)
    if entry is None:
        print(f"unknown command {command!r}\n", file=sys.stderr)
        print(usage(), file=sys.stderr)
        return 2
    module_name, _blurb = entry
    import importlib
    module = importlib.import_module(module_name)
    sys.argv = [f"repro {command}"] + argv
    module.main()
    return 0


if __name__ == "__main__":
    sys.exit(main())
