"""A master/worker workload.

The paper's introduction singles out master-worker execution as the
other popular MPI style besides SPMD ("MPI is often used for
Master-Worker execution, where MPI nodes play different roles"), so we
ship one: rank 0 farms independent tasks to workers and sums their
results.  Task bookkeeping lives entirely in checkpointable state, so
the workload survives rollback; re-issued tasks are deduplicated by
task id at the master.
"""

from __future__ import annotations

from dataclasses import dataclass

TAG_TASK = 300000
TAG_RESULT = 300001
TAG_STOP = 300002


def _task_result(task_id: int) -> int:
    """Deterministic "work": what a worker returns for a task."""
    return task_id * task_id + 1


@dataclass
class MasterWorkerWorkload:
    """Farm ``n_tasks`` squaring tasks over ``n_procs - 1`` workers."""

    n_procs: int
    n_tasks: int = 40
    work_per_task: float = 0.5
    msg_size: int = 2048

    def __post_init__(self) -> None:
        if self.n_procs < 2:
            raise ValueError("master/worker needs at least 2 ranks")

    def expected_total(self) -> int:
        return sum(_task_result(t) for t in range(self.n_tasks))

    # -- master ------------------------------------------------------------
    def _master(self, ep):
        st = ep.state
        if "next_task" not in st:
            st["next_task"] = 0
            st["results"] = {}          # task_id -> value (dedup by id)
            st["stopped"] = 0
        # prime every worker with one task (idempotent by task counter)
        while st["next_task"] < min(ep.size - 1, self.n_tasks):
            worker = st["next_task"] + 1
            ep.send(worker, TAG_TASK, st["next_task"], size=self.msg_size)
            st["next_task"] += 1
        # more workers than tasks: the surplus can stop right away
        if not st.get("surplus_stopped"):
            for worker in range(self.n_tasks + 1, ep.size):
                ep.send(worker, TAG_STOP, None, size=64)
                st["stopped"] += 1
            st["surplus_stopped"] = True
        while len(st["results"]) < self.n_tasks:
            msg = yield from ep.recv(tag=TAG_RESULT)
            task_id, value = msg.payload
            st["results"][task_id] = value
            if st["next_task"] < self.n_tasks:
                ep.send(msg.src, TAG_TASK, st["next_task"], size=self.msg_size)
                st["next_task"] += 1
            else:
                ep.send(msg.src, TAG_STOP, None, size=64)
                st["stopped"] += 1
        while st["stopped"] < ep.size - 1:
            # workers that never got a task (more workers than tasks) or
            # whose stop raced a rollback still need their stop order
            msg = yield from ep.recv(tag=TAG_RESULT)
            task_id, value = msg.payload
            st["results"][task_id] = value
            ep.send(msg.src, TAG_STOP, None, size=64)
            st["stopped"] += 1
        total = sum(st["results"].values())
        if total != self.expected_total():
            raise RuntimeError(
                f"master/worker verification FAILED: {total} != "
                f"{self.expected_total()}")
        st["verified"] = True
        ep.engine.log("verify_ok", checksum=total)
        ep.finalize()

    # -- worker -------------------------------------------------------------
    def _worker(self, ep):
        st = ep.state
        if "pending" not in st:
            st["pending"] = None        # task received but not answered
            st["done"] = False
        while not st["done"]:
            if st["pending"] is None:
                msg = yield from ep.recv(src=0)
                if msg.tag == TAG_STOP:
                    st["done"] = True
                    break
                st["pending"] = msg.payload
            yield from ep.compute(self.work_per_task)
            # answer + clear in one atomic step
            task_id = st["pending"]
            ep.send(0, TAG_RESULT, (task_id, _task_result(task_id)),
                    size=self.msg_size)
            st["pending"] = None
        st["verified"] = True
        ep.finalize()

    def app(self, ep):
        if ep.rank == 0:
            yield from self._master(ep)
        else:
            yield from self._worker(ep)

    def make_factory(self):
        return self.app
