"""A token-ring demo workload.

Small, latency-bound, and with a single in-flight token — the opposite
communication profile to BT.  Used by the quickstart example and as a
compact integration workload in tests (a lost or duplicated token is
immediately visible in the final count).

Restartability: each send is performed in the *same atomic step* as the
state update that marks it done, so a checkpoint can never capture a
state in which the token was consumed but not forwarded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpi.collectives import reduce_bcast

RING_TAG = 200000


@dataclass
class RingWorkload:
    """Pass an additive token around the ring ``rounds`` times.

    Every hop increments the token by one; after ``rounds`` full trips
    rank 0 holds exactly ``n_procs * rounds``.
    """

    n_procs: int
    rounds: int = 10
    work_per_hop: float = 0.05
    msg_size: int = 4096

    def expected_total(self) -> int:
        return self.n_procs * self.rounds

    def app(self, ep):
        st = ep.state
        if "round" not in st:
            st["round"] = 0
            st["token"] = 0
            st["stage"] = "send" if ep.rank == 0 else "recv"
        right = (ep.rank + 1) % ep.size
        left = (ep.rank - 1) % ep.size
        while st["round"] < self.rounds:
            rnd = st["round"]
            tag = RING_TAG + rnd
            # Stage dispatch: each arm checks its own stage so a state
            # restored at *any* stage resumes exactly where it was.
            if ep.rank == 0:
                if st["stage"] == "send":
                    ep.send(right, tag, st["token"] + 1, size=self.msg_size)
                    st["stage"] = "recv"
                if st["stage"] == "recv":
                    msg = yield from ep.recv(left, tag)
                    st["token"] = msg.payload
                    st["round"] = rnd + 1
                    st["stage"] = "work"
                if st["stage"] == "work":
                    yield from ep.compute(self.work_per_hop)
                    st["stage"] = "send"
            else:
                if st["stage"] == "recv":
                    msg = yield from ep.recv(left, tag)
                    # receive, account and forward in one atomic step
                    st["token"] = msg.payload
                    ep.send(right, tag, st["token"] + 1, size=self.msg_size)
                    st["round"] = rnd + 1
                    st["stage"] = "work"
                if st["stage"] == "work":
                    yield from ep.compute(self.work_per_hop)
                    st["stage"] = "recv"
        final = st["token"] if ep.rank == 0 else 0
        total = yield from reduce_bcast(ep, "ring_verify", final)
        if ep.rank == 0 and total != self.expected_total():
            raise RuntimeError(
                f"ring verification FAILED: {total} != {self.expected_total()}")
        st["verified"] = True
        if ep.rank == 0:
            ep.engine.log("verify_ok", checksum=total)
        ep.finalize()

    def make_factory(self):
        return self.app
