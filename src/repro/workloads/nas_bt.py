"""A NAS BT (Block Tridiagonal) class-B analogue.

The paper uses NAS BT class B as its workload because it "provides
complex communication schemes and is suitable for testing fault
tolerance", runs on a perfect-square number of processes, and keeps an
approximately constant total memory footprint split across ranks.

We model exactly those properties rather than the numerics:

* ranks form a √P×√P grid; every iteration performs the three ADI
  sweeps, each implemented as paired neighbour exchanges along a torus
  dimension (6 messages per rank per iteration);
* per-rank compute per iteration is ``total_compute/(niters·P)`` —
  constant total work, so execution time strong-scales like the real
  benchmark;
* message size scales with the per-rank footprint (boundary faces of
  the local block);
* **verification**: every received payload is folded into a running
  integer checksum; the closed-form expected total is checked by an
  allreduce at the end.  Any message lost or duplicated across an
  arbitrary schedule of failures and rollbacks breaks the final sum —
  this is the workload-level witness of Chandy-Lamport consistency.

The checksum arithmetic is integer-exact, so verification has no
tolerance knob.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from repro.mpi.collectives import reduce_bcast

#: tag namespace: tag = BT_TAG_BASE + iteration*8 + phase
BT_TAG_BASE = 100000

#: class-B-like calibration (see EXPERIMENTS.md): total CPU seconds of
#: useful work and iteration count.  exec(P) ≈ TOTAL_COMPUTE/P.
CLASS_B_TOTAL_COMPUTE = 8800.0
CLASS_B_NITERS = 120


def _contribution(iteration: int, rank: int) -> int:
    """The integer a rank folds into each message of an iteration."""
    return (iteration + 1) * (rank + 1)


def bt_expected_checksum(n_procs: int, niters: int) -> int:
    """Closed-form global checksum: every rank's per-iteration
    contribution is received exactly once per phase (6 phases)."""
    # _contribution(it, r) = (it+1)*(r+1): separable sum
    ranks_sum = sum(r + 1 for r in range(n_procs))
    iters_sum = sum(it + 1 for it in range(niters))
    return 6 * ranks_sum * iters_sum


@dataclass
class BTWorkload:
    """Factory producing the BT application generator for each rank."""

    n_procs: int
    niters: int = CLASS_B_NITERS
    total_compute: float = CLASS_B_TOTAL_COMPUTE
    #: total memory footprint (bytes); message size derives from it.
    footprint: float = 1.6e9
    #: fraction of the per-rank block exchanged per face message
    face_fraction: float = 0.02
    #: emit a trace "progress" record per iteration on rank 0
    log_progress: bool = True

    def __post_init__(self) -> None:
        k = math.isqrt(self.n_procs)
        if k * k != self.n_procs:
            raise ValueError(f"BT needs a square process count, got {self.n_procs}")
        self.grid = k

    @property
    def t_iter(self) -> float:
        """Per-rank compute seconds per iteration."""
        return self.total_compute / (self.niters * self.n_procs)

    @property
    def msg_size(self) -> int:
        return max(64, int(self.footprint / self.n_procs * self.face_fraction))

    def expected_checksum(self) -> int:
        return bt_expected_checksum(self.n_procs, self.niters)

    # -- neighbour topology ------------------------------------------------
    def _neighbors(self, rank: int, phase: int):
        """(send_to, recv_from) for a sweep phase on the torus grid."""
        k = self.grid
        row, col = divmod(rank, k)
        if phase in (0, 4):      # x-sweep forward (and z modelled on x)
            return row * k + (col + 1) % k, row * k + (col - 1) % k
        if phase in (1, 5):      # x-sweep backward
            return row * k + (col - 1) % k, row * k + (col + 1) % k
        if phase == 2:           # y-sweep forward
            return ((row + 1) % k) * k + col, ((row - 1) % k) * k + col
        if phase == 3:           # y-sweep backward
            return ((row - 1) % k) * k + col, ((row + 1) % k) * k + col
        raise ValueError(f"bad phase {phase}")

    # -- the application --------------------------------------------------------
    def app(self, ep):
        """The per-rank generator (restartable state machine)."""
        st = ep.state
        if "iter" not in st:
            st["iter"] = 0
            st["phase"] = 0
            st["acc"] = 0
        while st["iter"] < self.niters:
            it = st["iter"]
            while st["phase"] < 6:
                ph = st["phase"]
                send_to, recv_from = self._neighbors(ep.rank, ph)
                tag = BT_TAG_BASE + it * 8 + ph
                msg = yield from ep.sendrecv(
                    send_to, tag, _contribution(it, ep.rank),
                    recv_from, tag, size=self.msg_size)
                # atomic with the receive: fold in and advance the phase
                st["acc"] += msg.payload
                st["phase"] = ph + 1
            yield from ep.compute(self.t_iter)
            st["iter"] = it + 1
            st["phase"] = 0
            if self.log_progress and ep.rank == 0:
                ep.engine.log("progress", iter=st["iter"], of=self.niters)
        # global verification
        total = yield from reduce_bcast(ep, "bt_verify", st["acc"])
        expected = self.expected_checksum()
        if total != expected:
            raise RuntimeError(
                f"BT verification FAILED on rank {ep.rank}: "
                f"checksum {total} != expected {expected}")
        st["verified"] = True
        if ep.rank == 0:
            ep.engine.log("verify_ok", checksum=total)
        ep.finalize()

    def make_factory(self):
        """``app_factory`` for :class:`repro.mpichv.runtime.VclRuntime`."""
        return self.app
