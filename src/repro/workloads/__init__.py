"""Workloads: the NAS-BT-like benchmark plus smaller demo applications.

Every workload is written against :class:`repro.mpi.MpiEndpoint` and
follows the restartability contract (all progress in ``ep.state``), so
it survives checkpoint/rollback at any instant.

The module also hosts the **workload registry**: experiment campaigns
select a workload by name (``TrialSetup(workload="ring")``) and the
registered builder adapts the harness's shared calibration knobs
(``niters``, ``total_compute``, ``footprint``) to the workload's own
parameters.  Registering a new workload makes it available to every
experiment driver at once.
"""

from typing import Callable, List

from repro.registry import Registry
from repro.workloads.nas_bt import BTWorkload, bt_expected_checksum
from repro.workloads.ring import RingWorkload
from repro.workloads.masterworker import MasterWorkerWorkload

_REGISTRY = Registry("workload")


def register_workload(name: str, builder: Callable,
                      replace: bool = False) -> None:
    """Register a workload builder under ``name``.

    ``builder(n_procs=..., niters=..., total_compute=..., footprint=...,
    params={...})`` must return a workload object exposing
    ``make_factory()``.  ``params`` carries workload-specific overrides
    (``TrialSetup.workload_params``).
    """
    _REGISTRY.register(name, builder, replace=replace)


def unregister_workload(name: str) -> None:
    _REGISTRY.unregister(name)


def available_workloads() -> List[str]:
    """Registered workload names, sorted."""
    return _REGISTRY.available()


def build_workload(name: str, *, n_procs: int, niters: int,
                   total_compute: float, footprint: float,
                   params: dict = None):
    """Build the named workload; unknown names raise ``ValueError``."""
    builder = _REGISTRY.get(name)
    return builder(n_procs=n_procs, niters=niters,
                   total_compute=total_compute, footprint=footprint,
                   params=dict(params or {}))


# -- built-in builders --------------------------------------------------------

def _build_bt(*, n_procs, niters, total_compute, footprint, params):
    kw = dict(niters=niters, total_compute=total_compute,
              footprint=footprint)
    kw.update(params)           # params may override any calibration knob
    return BTWorkload(n_procs=n_procs, **kw)


def _build_ring(*, n_procs, niters, total_compute, footprint, params):
    # latency-bound token ring: rounds default to the iteration count,
    # per-hop work spreads the same total compute over every hop
    kw = dict(params)
    rounds = kw.setdefault("rounds", max(1, niters))
    kw.setdefault("work_per_hop", total_compute / (rounds * n_procs * 4))
    return RingWorkload(n_procs=n_procs, **kw)


def _build_masterworker(*, n_procs, niters, total_compute, footprint, params):
    # task farm: one task per "iteration" by default, same total compute
    kw = dict(params)
    n_tasks = kw.setdefault("n_tasks", max(1, niters))
    kw.setdefault("work_per_task", total_compute / (n_tasks * n_procs))
    return MasterWorkerWorkload(n_procs=n_procs, **kw)


register_workload("bt", _build_bt)
register_workload("ring", _build_ring)
register_workload("masterworker", _build_masterworker)

__all__ = [
    "BTWorkload",
    "bt_expected_checksum",
    "RingWorkload",
    "MasterWorkerWorkload",
    "register_workload",
    "unregister_workload",
    "available_workloads",
    "build_workload",
]
