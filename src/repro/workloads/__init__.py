"""Workloads: the NAS-BT-like benchmark plus smaller demo applications.

Every workload is written against :class:`repro.mpi.MpiEndpoint` and
follows the restartability contract (all progress in ``ep.state``), so
it survives checkpoint/rollback at any instant.
"""

from repro.workloads.nas_bt import BTWorkload, bt_expected_checksum
from repro.workloads.ring import RingWorkload
from repro.workloads.masterworker import MasterWorkerWorkload

__all__ = [
    "BTWorkload",
    "bt_expected_checksum",
    "RingWorkload",
    "MasterWorkerWorkload",
]
