"""Causal message tracing: a bounded per-trial event graph.

Every wire message a protocol component *mints* carries a causal
context — a ``(trace_id, parent_node)`` pair attached to the message
object itself — and the network's single transmit choke point
(:meth:`repro.cluster.network.Network._transmit`) turns each stamped
transmission into two graph nodes (send, receive) plus the edges that
connect them: a ``net`` edge from send to receive, and a ``causal``
edge from the parent node (the receive that *caused* this message)
to the send.  Walking the edges backward from any instant therefore
recovers the message dependency chain that produced it — which is what
:mod:`repro.analysis.critpath` does for every recovery epoch.

Identity is deterministic by construction: a trace id is
``<site>.<seq>.<t_us>`` — the minting component's stable site name, a
per-site monotone sequence number, and the integer microsecond of
simulated mint time.  No RNG, no wall clock, no id that could differ
between serial, pooled, cached, or ``--engine-workers N`` execution of
the same trial.

The off switch is the same one spans use: with no :class:`Obs`
recorder on the engine, :func:`mint` / :func:`derive` / :func:`adopt`
return after a single attribute read and attach nothing, so the hot
send path stays inside the dispatch benchmark gate.

Bounding mirrors ``MAX_SPANS``: the node list caps at
:data:`MAX_CAUSAL_NODES` (overflow counted in ``dropped_nodes``, cut
deterministically from the tail because nodes record in transmit
order), and an edge is only recorded when both endpoints exist
(anything else counts into ``dropped_edges`` — dangling references
never reach the document).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: indices into a node row ``[id, t, host, kind]``
N_ID, N_T, N_HOST, N_KIND = 0, 1, 2, 3
#: indices into an edge row ``[src_index, dst_index, type]``
E_SRC, E_DST, E_TYPE = 0, 1, 2

#: hard cap on recorded causal nodes per trial (mirrors ``MAX_SPANS``)
MAX_CAUSAL_NODES = 50000

#: the attribute causal context rides on (wire dataclasses are frozen
#: but define no ``__slots__``, so the stamp never touches a
#: constructor — see :func:`stamp`)
_CTX_ATTR = "_causal_ctx"


class CausalGraph:
    """Per-trial recorder of causal nodes and edges."""

    def __init__(self, max_nodes: int = MAX_CAUSAL_NODES):
        self.max_nodes = max_nodes
        #: node rows ``[id, t, host, kind]`` in transmit order
        self.nodes: List[list] = []
        #: edge rows ``[src_index, dst_index, type]``
        self.edges: List[list] = []
        self.dropped_nodes = 0
        self.dropped_edges = 0
        #: total contexts minted (recorded or not)
        self.minted = 0
        self._index: Dict[str, int] = {}
        self._site_seq: Dict[str, int] = {}
        #: per-trace transmit count — a stamped message sent to several
        #: peers (broadcast) fans out into distinct node pairs
        self._fanout: Dict[str, int] = {}

    # -- minting -----------------------------------------------------------
    def mint_id(self, site: str, now: float) -> str:
        """A fresh trace id: ``<site>.<seq>.<t_us>``."""
        seq = self._site_seq.get(site, 0) + 1
        self._site_seq[site] = seq
        self.minted += 1
        return f"{site}.{seq}.{int(round(now * 1e6))}"

    # -- recording ---------------------------------------------------------
    def _add_node(self, node_id: str, t: float, host: str,
                  kind: str) -> Optional[int]:
        if len(self.nodes) >= self.max_nodes:
            self.dropped_nodes += 1
            return None
        index = len(self.nodes)
        self.nodes.append([node_id, t, host, kind])
        self._index[node_id] = index
        return index

    def _add_edge(self, src: Optional[int], dst: Optional[int],
                  edge_type: str) -> None:
        if src is None or dst is None:
            self.dropped_edges += 1
            return
        self.edges.append([src, dst, edge_type])

    def on_transmit(self, ctx: Tuple[str, Optional[str]], kind: str,
                    src_host: str, dst_host: str,
                    t_send: float, t_recv: float, size: int) -> None:
        """Record one stamped transmission (network choke point).

        A re-transmitted object (broadcast fan-out, log replay) gets a
        ``#n`` suffix on its trace id so node ids stay unique; the
        parent link is shared — every copy was caused by the same
        upstream receive.
        """
        trace_id, parent_id = ctx
        n = self._fanout.get(trace_id, 0)
        self._fanout[trace_id] = n + 1
        tid = trace_id if n == 0 else f"{trace_id}#{n}"
        send = self._add_node(f"{tid}:s", t_send, src_host, kind)
        recv = self._add_node(f"{tid}:r", t_recv, dst_host, kind)
        self._add_edge(send, recv, "net")
        if parent_id is not None:
            self._add_edge(self._index.get(parent_id), send, "causal")

    # -- document ----------------------------------------------------------
    def to_doc(self) -> Dict[str, Any]:
        return {
            "nodes": [list(n) for n in self.nodes],
            "edges": [list(e) for e in self.edges],
            "dropped_nodes": self.dropped_nodes,
            "dropped_edges": self.dropped_edges,
            "minted": self.minted,
        }


# -- stamping helpers (protocol call sites) --------------------------------

def ctx_of(msg: Any) -> Optional[Tuple[str, Optional[str]]]:
    """The causal context riding on ``msg``, or None."""
    return getattr(msg, _CTX_ATTR, None)


def parent_of(msg: Any) -> Optional[str]:
    """The receive-node id of an inbound stamped message.

    This is what a handler passes as ``parent`` when the message it is
    about to send was *caused by* ``msg`` — the new send hangs off the
    instant ``msg`` arrived.
    """
    ctx = getattr(msg, _CTX_ATTR, None)
    if ctx is None:
        return None
    return f"{ctx[0]}:r"


def stamp(engine: Any, msg: Any, site: str,
          parent: Optional[str] = None) -> None:
    """Mint a fresh context for ``msg`` (no-op when observation is off).

    ``site`` is the minting component's stable name (``disp``,
    ``sched``, ``r<rank>``, ``cm<i>``, ...); ``parent`` — usually
    :func:`parent_of` an inbound message — links the new trace to its
    cause.  Frozen wire dataclasses take the stamp through
    ``object.__setattr__`` (they define no ``__slots__``).
    """
    obs = engine.obs
    if obs is None:
        return
    causal = obs.causal
    object.__setattr__(msg, _CTX_ATTR,
                       (causal.mint_id(site, engine.now), parent))


def derive(engine: Any, msg: Any, site: str, cause: Any) -> None:
    """Stamp ``msg`` with a fresh trace parented on inbound ``cause``."""
    obs = engine.obs
    if obs is None:
        return
    stamp(engine, msg, site, parent=parent_of(cause))


def adopt(msg: Any, original: Any) -> None:
    """Copy ``original``'s context onto ``msg`` verbatim.

    The wrapper case: a daemon enveloping an application message
    (``DataMsg``/``V2Data``/``CMPut`` around an ``AppMessage``)
    continues the *same* trace — the envelope's journey is the
    message's journey.
    """
    ctx = getattr(original, _CTX_ATTR, None)
    if ctx is not None:
        object.__setattr__(msg, _CTX_ATTR, ctx)


def causal_kind_rollup(obs_doc: Optional[Dict[str, Any]]
                       ) -> Dict[str, Dict[str, float]]:
    """Per-message-kind rollup of an obs document's causal net edges.

    ``{kind: {count, seconds}}`` where ``seconds`` sums the in-flight
    time (receive minus send) of every recorded transmission of that
    kind.  Tolerates ``None`` and pre-causal documents.
    """
    rollup: Dict[str, Dict[str, float]] = {}
    if not obs_doc:
        return rollup
    causal = obs_doc.get("causal") or {}
    nodes = causal.get("nodes", [])
    for edge in causal.get("edges", ()):
        if edge[E_TYPE] != "net":
            continue
        src, dst = nodes[edge[E_SRC]], nodes[edge[E_DST]]
        entry = rollup.setdefault(src[N_KIND], {"count": 0, "seconds": 0.0})
        entry["count"] += 1
        entry["seconds"] += dst[N_T] - src[N_T]
    for entry in rollup.values():
        entry["seconds"] = round(entry["seconds"], 9)
    return rollup
