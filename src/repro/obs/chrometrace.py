"""Chrome-trace / Perfetto JSON export of an ``obs`` document.

Produces the ``traceEvents`` JSON-object format that both
``chrome://tracing`` and https://ui.perfetto.dev load directly: one
complete event (``ph: "X"``) per span, timestamps in integer
microseconds of *simulated* time, one lane (thread) per host plus the
synthetic ``net`` lane.

Determinism: the export is a pure function of the ``obs`` document —
lanes sort naturally (``m2`` before ``m10``), events keep the
document's dispatch order, and the JSON serializes with sorted keys
and fixed separators — so the bytes are identical across serial,
pooled, cached and ``--engine-workers N`` runs of the same trial.

Optionally, ``partitions`` (a list of host groups, e.g. the
deployment's :func:`repro.mpichv.shardmap.partition_hosts` plan)
groups the lanes into one Perfetto *process* per engine partition.
This is a pure display grouping computed from the configuration — the
default export never consults the execution mode, which is what keeps
it byte-identical across worker counts.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.spans import FIELDS, KIND, LANE, T0, T1

_NAT = re.compile(r"(\d+)")


def _lane_key(lane: str):
    """Natural sort: ``m2`` < ``m10``, service lanes after machines."""
    return tuple(int(part) if part.isdigit() else part
                 for part in _NAT.split(lane))


def _us(t: float) -> int:
    return int(round(t * 1e6))


def chrome_trace_doc(obs_doc: Dict[str, Any],
                     title: str = "repro trial",
                     partitions: Optional[Sequence[Sequence[str]]] = None,
                     ) -> Dict[str, Any]:
    """Build the Chrome-trace document (Python objects, not JSON)."""
    spans = obs_doc.get("spans", []) if obs_doc else []
    lanes = sorted({row[LANE] for row in spans}, key=_lane_key)
    # lane -> (pid, tid); pid groups lanes per partition when asked
    lane_pid: Dict[str, int] = {}
    pid_names: Dict[int, str] = {1: title}
    if partitions:
        for gi, group in enumerate(partitions):
            pid_names[gi + 1] = f"partition {gi}"
            for host in group:
                lane_pid[host] = gi + 1
        pid_names[len(partitions) + 1] = "shared"
        default_pid = len(partitions) + 1
    else:
        default_pid = 1
    lane_tid = {lane: tid for tid, lane in enumerate(lanes, start=1)}

    events: List[Dict[str, Any]] = []
    for pid in sorted(pid_names):
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": pid_names[pid]}})
    for lane in lanes:
        pid = lane_pid.get(lane, default_pid)
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": lane_tid[lane], "args": {"name": lane}})
        events.append({"ph": "M", "name": "thread_sort_index", "pid": pid,
                       "tid": lane_tid[lane],
                       "args": {"sort_index": lane_tid[lane]}})
    for row in spans:
        t0, t1 = row[T0], row[T1]
        lane = row[LANE]
        events.append({
            "ph": "X",
            "name": row[KIND],
            "cat": row[KIND],
            "pid": lane_pid.get(lane, default_pid),
            "tid": lane_tid[lane],
            "ts": _us(t0),
            "dur": _us((t1 if t1 is not None else t0) - t0),
            "args": row[FIELDS] or {},
        })
    # flow events: one s/f pair per critical-path segment, drawn on the
    # epoch's relaunch lane so Perfetto threads the recovery anatomy
    # through the span view (function-level import: repro.analysis
    # imports the obs document layer, not the other way round)
    from repro.analysis.critpath import critical_paths
    flow_id = 0
    for crow in critical_paths(obs_doc):
        lane = crow["lane"]
        if lane not in lane_tid:
            continue
        pid = lane_pid.get(lane, default_pid)
        tid = lane_tid[lane]
        for seg in crow["segments"]:
            flow_id += 1
            name = f"crit:{seg['phase']}"
            events.append({"ph": "s", "id": flow_id, "name": name,
                           "cat": "critpath", "pid": pid, "tid": tid,
                           "ts": _us(seg["t0"]),
                           "args": {"epoch": crow["epoch"]}})
            events.append({"ph": "f", "bp": "e", "id": flow_id,
                           "name": name, "cat": "critpath", "pid": pid,
                           "tid": tid, "ts": _us(seg["t1"]),
                           "args": {"epoch": crow["epoch"]}})
    metrics = (obs_doc or {}).get("metrics") or {}
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated",
            "dropped_spans": (obs_doc or {}).get("dropped_spans", 0),
            "truncated_spans": (obs_doc or {}).get("truncated_spans", 0),
            "counters": metrics.get("counters", {}),
        },
    }


def chrome_trace_json(obs_doc: Dict[str, Any],
                      title: str = "repro trial",
                      partitions: Optional[Sequence[Sequence[str]]] = None,
                      ) -> str:
    """Serialize with sorted keys + fixed separators (byte-stable)."""
    doc = chrome_trace_doc(obs_doc, title=title, partitions=partitions)
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def write_chrome_trace(path: str, obs_doc: Dict[str, Any],
                       title: str = "repro trial",
                       partitions: Optional[Sequence[Sequence[str]]] = None,
                       ) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(chrome_trace_json(obs_doc, title=title,
                                   partitions=partitions))
