"""Spans: nested sim-time intervals recorded at protocol call sites.

A span is ``[t0, t1)`` on a *lane* — a host name (``m3``, ``svc0``) or
the synthetic ``net`` lane — with a ``kind`` tag and a small field
dict.  Call sites open spans through
:meth:`repro.simkernel.engine.Engine.span`; with no :class:`Obs`
recorder attached the call returns the shared :data:`NULL_SPAN` and
costs one attribute read, which is the ``keep=False``-style off switch
that keeps the engine hot path inside the dispatch benchmark gate.

Determinism contract: recording a span never schedules engine events,
never writes the trace, and never consumes ``engine.random`` — the
span list is derived *from* the simulated history, so the golden
digest matrix (``tests/test_engine_workers_golden.py``) and the byte
equality of serial / pooled / cached results are unaffected by turning
observation on or off.

The recorder keeps two registries: :attr:`Obs.metrics` for quantities
that are pure functions of the simulation (exported, cached,
byte-compared) and :attr:`Obs.exec_metrics` for execution metadata —
front-lane hits, slot occupancy, null-message ratios — which varies
legitimately with ``engine_workers`` and therefore never feeds the
deterministic exporters.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.causal import CausalGraph
from repro.obs.metrics import MetricsRegistry

#: indices into a span row ``[t0, t1, kind, lane, fields]``
T0, T1, KIND, LANE, FIELDS = 0, 1, 2, 3, 4

#: hard cap on recorded spans per trial — a deterministic bound (spans
#: record in dispatch order, so truncation cuts the same tail
#: everywhere); overflow is counted in ``dropped_spans``
MAX_SPANS = 50000


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


class Span:
    """One open or closed interval (mutated in place on close)."""

    __slots__ = ("obs", "kind", "lane", "t0", "t1", "fields")

    def __init__(self, obs: "Obs", kind: str, lane: str, t0: float,
                 fields: Dict[str, Any]):
        self.obs = obs
        self.kind = kind
        self.lane = lane
        self.t0 = t0
        self.t1: Optional[float] = None
        self.fields = fields

    @property
    def closed(self) -> bool:
        return self.t1 is not None

    def close(self, **fields: Any) -> "Span":
        """Close at the engine's current instant (idempotent)."""
        if self.t1 is None:
            self.obs._close(self, self.obs.engine.now, fields)
        return self

    def close_at(self, t1: float, **fields: Any) -> "Span":
        if self.t1 is None:
            self.obs._close(self, t1, fields)
        return self

    def to_row(self) -> List[Any]:
        return [self.t0, self.t1, self.kind, self.lane,
                _json_safe(self.fields)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        end = f"{self.t1:.3f}" if self.t1 is not None else "…"
        return f"<Span {self.kind}@{self.lane} [{self.t0:.3f},{end})>"


class _NullSpan:
    """Shared no-op handle returned when observation is off."""

    __slots__ = ()
    closed = True

    def close(self, **fields: Any) -> "_NullSpan":
        return self

    def close_at(self, t1: float, **fields: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Obs:
    """Per-trial recorder: the span list plus the two registries."""

    def __init__(self, engine=None, max_spans: int = MAX_SPANS):
        self.engine = engine
        self.max_spans = max_spans
        #: every recorded span, in open (dispatch) order
        self.spans: List[Span] = []
        #: kind -> open spans of that kind, in open order (FIFO)
        self._open: Dict[str, List[Span]] = {}
        self.dropped_spans = 0
        self.truncated_spans = 0
        #: simulation-deterministic metrics (exported, cached)
        self.metrics = MetricsRegistry()
        #: execution metadata (never read by deterministic exporters)
        self.exec_metrics = MetricsRegistry()
        #: causal message graph (see :mod:`repro.obs.causal`), fed by
        #: the network transmit choke point
        self.causal = CausalGraph()
        self._finalized = False

    # -- span lifecycle ----------------------------------------------------
    def open(self, kind: str, lane: str, t0: float,
             fields: Dict[str, Any]):
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return NULL_SPAN
        span = Span(self, kind, lane, t0, fields)
        self.spans.append(span)
        self._open.setdefault(kind, []).append(span)
        return span

    def _close(self, span: Span, t1: float, fields: Dict[str, Any]) -> None:
        span.t1 = t1
        if fields:
            span.fields.update(fields)
        bucket = self._open.get(span.kind)
        if bucket is not None and span in bucket:
            bucket.remove(span)

    def open_spans(self, kind: str) -> List[Span]:
        return list(self._open.get(kind, ()))

    def end_oldest(self, kind: str, t1: float,
                   match: Optional[Dict[str, Any]] = None,
                   **fields: Any) -> Optional[Span]:
        """Close the oldest open span of ``kind`` (FIFO hand-off).

        With ``match``, only a span whose fields agree on every given
        key qualifies — e.g. the dispatcher closing the ``detect`` span
        of the machine whose daemon's socket just dropped, not whichever
        kill happened to land first.  Returns the closed span, or None
        when nothing (matching) was open.
        """
        for span in self._open.get(kind, ()):
            if match is not None and any(span.fields.get(k) != v
                                         for k, v in match.items()):
                continue
            self._close(span, t1, fields)
            return span
        return None

    def close_all(self, kind: str, t1: float, **fields: Any) -> int:
        """Close every open span of ``kind``; returns how many."""
        bucket = self._open.pop(kind, None)
        if not bucket:
            return 0
        for span in bucket:
            span.t1 = t1
            if fields:
                span.fields.update(fields)
        return len(bucket)

    # -- trace listener ----------------------------------------------------
    def on_trace(self, rec) -> None:
        """Live trace hook: application-progress records end catch-up.

        The ``catchup`` phase has no natural closing call site — "the
        system is caught up" is observable only as the application
        making progress again — so the recorder watches the trace: the
        first ``progress`` / ``verify_ok`` / ``app_done`` record closes
        every open catch-up span, and a new ``failure_detected`` cuts
        them short (the next recovery supersedes the current one).
        """
        kind = rec.kind
        if kind in ("progress", "verify_ok", "app_done"):
            if self._open.get("catchup"):
                self.close_all("catchup", rec.t)
        elif kind == "failure_detected":
            if self._open.get("catchup"):
                self.close_all("catchup", rec.t, cut_short=True)

    # -- end of run --------------------------------------------------------
    def finalize(self, end_time: float) -> None:
        """Close every span still open at the end of the run.

        A span left open means its closing site never ran — a daemon
        died mid-checkpoint-transfer, a partition was never healed.
        Those close at ``end_time`` with a ``_truncated`` marker so
        exporters can render them while the nesting checks exclude
        them.
        """
        if self._finalized:
            return
        self._finalized = True
        for bucket in self._open.values():
            for span in bucket:
                span.t1 = end_time
                span.fields["_truncated"] = True
                self.truncated_spans += 1
        self._open.clear()

    def to_doc(self) -> Dict[str, Any]:
        """The compact ``obs`` wire document (see RunResult.obs)."""
        return {
            "version": 2,
            "spans": [s.to_row() for s in self.spans],
            "dropped_spans": self.dropped_spans,
            "truncated_spans": self.truncated_spans,
            "metrics": self.metrics.to_doc(),
            "exec": self.exec_metrics.to_doc(),
            "causal": self.causal.to_doc(),
        }


def span_rollups(obs_doc: Optional[Dict[str, Any]]
                 ) -> Dict[str, Dict[str, float]]:
    """Per-kind rollups of an ``obs`` document's span rows.

    ``{kind: {count, total, max, truncated}}`` with durations in
    simulated seconds.  Tolerates ``None`` (observation was off) by
    returning an empty dict, so consumers can stay unconditional.
    """
    rollups: Dict[str, Dict[str, float]] = {}
    if not obs_doc:
        return rollups
    for row in obs_doc.get("spans", ()):
        kind = row[KIND]
        entry = rollups.setdefault(
            kind, {"count": 0, "total": 0.0, "max": 0.0, "truncated": 0})
        entry["count"] += 1
        fields = row[FIELDS] or {}
        if fields.get("_truncated"):
            entry["truncated"] += 1
            continue
        dur = (row[T1] if row[T1] is not None else row[T0]) - row[T0]
        entry["total"] += dur
        if dur > entry["max"]:
            entry["max"] = dur
    return rollups
