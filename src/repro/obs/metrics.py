"""The metrics registry: counters, gauges, log-bucketed histograms.

Every value is keyed by a stable label string (``disp.rx.Register``,
``ckptsrv.disk.wait_ms``) and fed exclusively with simulated-time
quantities, so a registry filled during a trial is a pure function of
the simulation history — same ``(setup, seed)`` ⇒ bit-identical
document, serial or pooled, live or cache-loaded.

Histograms reuse the AFL-style logarithmic buckets of
:func:`repro.analysis.coverage.hit_bucket`: an observation of ``v``
lands in bucket ``1, 2, 4, 8, ...`` — one restart is a different
behaviour than eight, eight and nine are the same.  That keeps a
histogram a handful of integers no matter how many observations feed
it, which is what lets the registry ride inside every cached result.
"""

from __future__ import annotations

from typing import Any, Dict, Union

from repro.analysis.coverage import hit_bucket

Number = Union[int, float]


class MetricsRegistry:
    """Counters, gauges and log-bucketed histograms by label."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, Number] = {}
        #: name -> {bucket (int) -> observation count}
        self.histograms: Dict[str, Dict[int, int]] = {}

    # -- recording ---------------------------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: Number) -> None:
        """Set the gauge ``name`` (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, value: Number) -> None:
        """Record one observation into the log-bucketed histogram.

        Values below 1 (including negatives) share the bucket ``1`` —
        the histograms here measure sizes and durations where "smaller
        than the resolution" is one behaviour, not many.
        """
        bucket = hit_bucket(max(1, int(value)))
        hist = self.histograms.setdefault(name, {})
        hist[bucket] = hist.get(bucket, 0) + 1

    # -- queries -----------------------------------------------------------
    def histogram_summary(self, name: str) -> Dict[str, int]:
        """``{count, min_bucket, max_bucket}`` of one histogram."""
        hist = self.histograms.get(name, {})
        if not hist:
            return {"count": 0, "min_bucket": 0, "max_bucket": 0}
        return {"count": sum(hist.values()),
                "min_bucket": min(hist),
                "max_bucket": max(hist)}

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)

    # -- wire form ---------------------------------------------------------
    def to_doc(self) -> Dict[str, Any]:
        """JSON-safe document with deterministic (sorted) key order."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                name: {str(b): hist[b] for b in sorted(hist)}
                for name, hist in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "MetricsRegistry":
        reg = cls()
        reg.counters = {str(k): int(v)
                        for k, v in (doc.get("counters") or {}).items()}
        reg.gauges = dict(doc.get("gauges") or {})
        reg.histograms = {
            str(name): {int(b): int(c) for b, c in hist.items()}
            for name, hist in (doc.get("histograms") or {}).items()
        }
        return reg

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (f"<MetricsRegistry counters={len(self.counters)} "
                f"gauges={len(self.gauges)} "
                f"histograms={len(self.histograms)}>")
