"""Campaign-level observability rollup: OpenMetrics + static HTML.

A campaign produces one ``obs`` document per observed trial; this
module aggregates any number of them into a single summary and renders
it two ways:

* an **OpenMetrics text exposition** (``metrics.txt``) — the plain-text
  format Prometheus-family scrapers ingest, one family per aggregate
  with a terminating ``# EOF`` line;
* a **static HTML report** (``index.html``) — a self-contained page
  with the same numbers in tables, for humans and CI artifacts.

Both renderings are pure functions of the aggregated dict with every
iteration order sorted, so re-running a campaign (or re-aggregating
its result store) reproduces the files byte for byte.
"""

from __future__ import annotations

import html
import json
import os
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.causal import causal_kind_rollup
from repro.obs.spans import span_rollups


def _round9(v: float) -> float:
    return round(v, 9)


def aggregate_obs(obs_docs: Iterable[Optional[Dict[str, Any]]]
                  ) -> Dict[str, Any]:
    """Aggregate many trials' ``obs`` documents into one summary."""
    # function-level: repro.analysis builds on the obs layer, and this
    # is the one place the dependency briefly points the other way
    from repro.analysis.critpath import critical_paths

    spans: Dict[str, Dict[str, float]] = {}
    wire: Dict[str, Dict[str, float]] = {}
    critpath: Dict[str, float] = {}
    causal_totals = {"nodes": 0, "edges": 0, "minted": 0,
                     "dropped_nodes": 0, "dropped_edges": 0}
    counters: Dict[str, float] = {}
    trials = 0
    epochs = 0
    dropped_spans = 0

    for doc in obs_docs:
        if not doc:
            continue
        trials += 1
        dropped_spans += doc.get("dropped_spans", 0)
        for kind, roll in span_rollups(doc).items():
            agg = spans.setdefault(kind, {"count": 0, "total": 0.0,
                                          "max": 0.0, "truncated": 0})
            agg["count"] += roll["count"]
            agg["total"] += roll["total"]
            agg["max"] = max(agg["max"], roll["max"])
            agg["truncated"] += roll["truncated"]
        for kind, roll in causal_kind_rollup(doc).items():
            agg = wire.setdefault(kind, {"count": 0, "seconds": 0.0})
            agg["count"] += roll["count"]
            agg["seconds"] += roll["seconds"]
        causal = doc.get("causal") or {}
        causal_totals["nodes"] += len(causal.get("nodes", ()))
        causal_totals["edges"] += len(causal.get("edges", ()))
        causal_totals["minted"] += causal.get("minted", 0)
        causal_totals["dropped_nodes"] += causal.get("dropped_nodes", 0)
        causal_totals["dropped_edges"] += causal.get("dropped_edges", 0)
        for row in critical_paths(doc):
            epochs += 1
            if row["truncated"]:
                continue
            for seg in row["segments"]:
                critpath[seg["phase"]] = critpath.get(seg["phase"], 0.0) \
                    + seg["dur"]
            critpath["recovery"] = critpath.get("recovery", 0.0) \
                + row["recovery"]
        metrics = doc.get("metrics") or {}
        for name, value in (metrics.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value

    for agg in spans.values():
        agg["total"] = _round9(agg["total"])
        agg["max"] = _round9(agg["max"])
    for agg in wire.values():
        agg["seconds"] = _round9(agg["seconds"])
    return {
        "trials": trials,
        "epochs": epochs,
        "dropped_spans": dropped_spans,
        "spans": spans,
        "wire": wire,
        "causal": causal_totals,
        "critpath": {k: _round9(v) for k, v in critpath.items()},
        "counters": counters,
    }


def _num(v: Any) -> str:
    """Deterministic OpenMetrics number rendering."""
    if isinstance(v, bool):
        return "1" if v else "0"
    if isinstance(v, int) or (isinstance(v, float) and v == int(v)):
        return str(int(v))
    return repr(_round9(float(v)))


def openmetrics_text(agg: Dict[str, Any]) -> str:
    """OpenMetrics text exposition of one campaign aggregate."""
    lines: List[str] = []

    def family(name: str, mtype: str, help_text: str) -> None:
        lines.append(f"# TYPE {name} {mtype}")
        lines.append(f"# HELP {name} {help_text}")

    family("repro_trials", "counter", "observed trials aggregated")
    lines.append(f"repro_trials_total {_num(agg['trials'])}")
    family("repro_recovery_epochs", "counter",
           "recovery epochs across all observed trials")
    lines.append(f"repro_recovery_epochs_total {_num(agg['epochs'])}")
    family("repro_dropped_spans", "counter",
           "spans dropped by the per-trial cap")
    lines.append(f"repro_dropped_spans_total {_num(agg['dropped_spans'])}")

    family("repro_span_count", "counter", "recorded spans by kind")
    for kind in sorted(agg["spans"]):
        lines.append(f'repro_span_count_total{{kind="{kind}"}} '
                     f'{_num(agg["spans"][kind]["count"])}')
    family("repro_span_seconds", "counter",
           "summed span duration by kind (simulated seconds)")
    for kind in sorted(agg["spans"]):
        lines.append(f'repro_span_seconds_total{{kind="{kind}"}} '
                     f'{_num(agg["spans"][kind]["total"])}')

    family("repro_critpath_seconds", "counter",
           "recovery critical-path seconds by phase")
    for phase in sorted(agg["critpath"]):
        lines.append(f'repro_critpath_seconds_total{{phase="{phase}"}} '
                     f'{_num(agg["critpath"][phase])}')

    family("repro_wire_count", "counter",
           "causally-traced transmissions by wire message kind")
    for kind in sorted(agg["wire"]):
        lines.append(f'repro_wire_count_total{{kind="{kind}"}} '
                     f'{_num(agg["wire"][kind]["count"])}')
    family("repro_wire_seconds", "counter",
           "summed in-flight seconds by wire message kind")
    for kind in sorted(agg["wire"]):
        lines.append(f'repro_wire_seconds_total{{kind="{kind}"}} '
                     f'{_num(agg["wire"][kind]["seconds"])}')

    family("repro_causal_nodes", "counter", "recorded causal graph nodes")
    lines.append(f"repro_causal_nodes_total {_num(agg['causal']['nodes'])}")
    family("repro_causal_edges", "counter", "recorded causal graph edges")
    lines.append(f"repro_causal_edges_total {_num(agg['causal']['edges'])}")
    family("repro_causal_dropped_nodes", "counter",
           "causal nodes dropped by the per-trial cap")
    lines.append("repro_causal_dropped_nodes_total "
                 f"{_num(agg['causal']['dropped_nodes'])}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _table(headers: List[str], rows: List[List[str]]) -> str:
    out = ["<table>", "<tr>" + "".join(f"<th>{html.escape(h)}</th>"
                                       for h in headers) + "</tr>"]
    for row in rows:
        out.append("<tr>" + "".join(f"<td>{html.escape(c)}</td>"
                                    for c in row) + "</tr>")
    out.append("</table>")
    return "\n".join(out)


def html_report(agg: Dict[str, Any], title: str = "repro campaign") -> str:
    """Self-contained static HTML page of one campaign aggregate."""
    parts = [
        "<!DOCTYPE html>",
        '<html><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        "<style>body{font-family:monospace;margin:2em}"
        "table{border-collapse:collapse;margin:1em 0}"
        "th,td{border:1px solid #999;padding:0.2em 0.6em;"
        "text-align:right}th{background:#eee}</style>",
        "</head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p>{agg['trials']} observed trials, "
        f"{agg['epochs']} recovery epochs, "
        f"{agg['dropped_spans']} dropped spans.</p>",
        "<h2>Recovery critical path</h2>",
        _table(["phase", "seconds"],
               [[p, _num(agg["critpath"][p])]
                for p in sorted(agg["critpath"])]),
        "<h2>Spans</h2>",
        _table(["kind", "count", "seconds", "max", "truncated"],
               [[k, _num(r["count"]), _num(r["total"]), _num(r["max"]),
                 _num(r["truncated"])]
                for k, r in sorted(agg["spans"].items())]),
        "<h2>Wire traffic (causal net edges)</h2>",
        _table(["kind", "count", "in-flight seconds"],
               [[k, _num(r["count"]), _num(r["seconds"])]
                for k, r in sorted(agg["wire"].items())]),
        "<h2>Causal graph</h2>",
        _table(["metric", "value"],
               [[k, _num(v)] for k, v in sorted(agg["causal"].items())]),
        "<h2>Counters</h2>",
        _table(["counter", "total"],
               [[k, _num(v)] for k, v in sorted(agg["counters"].items())]),
        "</body></html>",
    ]
    return "\n".join(parts) + "\n"


def write_obs_report(outdir: str,
                     obs_docs: Iterable[Optional[Dict[str, Any]]],
                     title: str = "repro campaign") -> Dict[str, str]:
    """Aggregate and write ``metrics.txt`` + ``index.html`` under
    ``outdir``; returns the written paths."""
    agg = aggregate_obs(obs_docs)
    os.makedirs(outdir, exist_ok=True)
    paths = {"metrics": os.path.join(outdir, "metrics.txt"),
             "html": os.path.join(outdir, "index.html"),
             "aggregate": os.path.join(outdir, "aggregate.json")}
    with open(paths["metrics"], "w", encoding="utf-8") as fh:
        fh.write(openmetrics_text(agg))
    with open(paths["html"], "w", encoding="utf-8") as fh:
        fh.write(html_report(agg, title=title))
    with open(paths["aggregate"], "w", encoding="utf-8") as fh:
        fh.write(json.dumps(agg, sort_keys=True, indent=2) + "\n")
    return paths
