"""repro.obs — deterministic, sim-time observability.

Three cooperating pieces, all pure functions of the simulated history
(never of the wall clock, the worker pool, or the engine partitioning):

* :mod:`repro.obs.spans` — nested ``[t0, t1)`` intervals opened through
  :meth:`repro.simkernel.engine.Engine.span` at protocol call sites
  (dispatcher, daemon lifecycle, checkpoint servers, channel memories,
  the network fault API), so a restart epoch decomposes into
  ``detect → relaunch → restore → replay → catchup`` and a checkpoint
  wave into ``initiate → transfer → commit``;
* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  log-bucketed histograms keyed by stable label strings (the
  ``hit_bucket`` idiom of :mod:`repro.analysis.coverage`);
* :mod:`repro.obs.causal` — the causal message-tracing graph: every
  minted wire message carries a deterministic ``(trace_id, parent)``
  context, and the network's transmit choke point records the bounded
  per-trial event graph that :mod:`repro.analysis.critpath` walks;
* exporters — :mod:`repro.obs.chrometrace` (Chrome-trace / Perfetto
  JSON, one lane per host, plus critical-path flow events),
  :mod:`repro.obs.phases` (the per-epoch phase table behind ``python
  -m repro timeline --phases``) and :mod:`repro.obs.report` (the
  campaign-level OpenMetrics + HTML rollup).

The wire form is the compact ``obs`` document on
:class:`repro.mpichv.runtime.RunResult`: span rows plus the metrics
registry, identical byte-for-byte across serial / pooled / cached
execution and every ``--engine-workers`` value.  Execution metadata
(front-lane hits, slot occupancy, null-message ratios — quantities
that legitimately vary with the execution mode) lives in a separate
``exec`` section that the deterministic exporters never read.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import (FIELDS, KIND, LANE, NULL_SPAN, T0, T1, Obs,
                             span_rollups)
from repro.obs.causal import CausalGraph, causal_kind_rollup
from repro.obs.chrometrace import (chrome_trace_doc, chrome_trace_json,
                                   write_chrome_trace)
from repro.obs.phases import epoch_phase_table, render_phase_table
from repro.obs.report import (aggregate_obs, html_report, openmetrics_text,
                              write_obs_report)

__all__ = [
    "MetricsRegistry",
    "Obs",
    "NULL_SPAN",
    "T0", "T1", "KIND", "LANE", "FIELDS",
    "span_rollups",
    "CausalGraph",
    "causal_kind_rollup",
    "chrome_trace_doc",
    "chrome_trace_json",
    "write_chrome_trace",
    "epoch_phase_table",
    "render_phase_table",
    "aggregate_obs",
    "openmetrics_text",
    "html_report",
    "write_obs_report",
]
