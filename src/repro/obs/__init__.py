"""repro.obs — deterministic, sim-time observability.

Three cooperating pieces, all pure functions of the simulated history
(never of the wall clock, the worker pool, or the engine partitioning):

* :mod:`repro.obs.spans` — nested ``[t0, t1)`` intervals opened through
  :meth:`repro.simkernel.engine.Engine.span` at protocol call sites
  (dispatcher, daemon lifecycle, checkpoint servers, channel memories,
  the network fault API), so a restart epoch decomposes into
  ``detect → relaunch → restore → replay → catchup`` and a checkpoint
  wave into ``initiate → transfer → commit``;
* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  log-bucketed histograms keyed by stable label strings (the
  ``hit_bucket`` idiom of :mod:`repro.analysis.coverage`);
* exporters — :mod:`repro.obs.chrometrace` (Chrome-trace / Perfetto
  JSON, one lane per host) and :mod:`repro.obs.phases` (the per-epoch
  phase table behind ``python -m repro timeline --phases``).

The wire form is the compact ``obs`` document on
:class:`repro.mpichv.runtime.RunResult`: span rows plus the metrics
registry, identical byte-for-byte across serial / pooled / cached
execution and every ``--engine-workers`` value.  Execution metadata
(front-lane hits, slot occupancy, null-message ratios — quantities
that legitimately vary with the execution mode) lives in a separate
``exec`` section that the deterministic exporters never read.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import (FIELDS, KIND, LANE, NULL_SPAN, T0, T1, Obs,
                             span_rollups)
from repro.obs.chrometrace import (chrome_trace_doc, chrome_trace_json,
                                   write_chrome_trace)
from repro.obs.phases import epoch_phase_table, render_phase_table

__all__ = [
    "MetricsRegistry",
    "Obs",
    "NULL_SPAN",
    "T0", "T1", "KIND", "LANE", "FIELDS",
    "span_rollups",
    "chrome_trace_doc",
    "chrome_trace_json",
    "write_chrome_trace",
    "epoch_phase_table",
    "render_phase_table",
]
