"""Per-epoch recovery phase tables derived from span boundaries.

Each ``relaunch`` span anchors one recovery row.  The row's phase
boundaries are the *instants* where one span hands off to the next —
the ``detect`` span ending where ``relaunch`` begins, ``restore``
starting once the daemon re-registered, ``replay`` draining the logged
messages — so the four phase durations tile the interval exactly:

    detect + relaunch + restore + replay == t_replay_end − t_fault

by construction, not by summing independently-measured (and therefore
gap-prone) durations.  ``catchup`` extends the row to the first
application progress after recovery and is reported separately — it
overlaps normal execution and is not part of the recovery time proper.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.spans import FIELDS, KIND, LANE, T0, T1

#: tolerance when matching a detect span's end to a relaunch start —
#: one event granularity in the simulated clock
_EPS = 1e-9


def _rows_of(obs_doc: Optional[Dict[str, Any]], kind: str) -> List[list]:
    if not obs_doc:
        return []
    return [row for row in obs_doc.get("spans", ()) if row[KIND] == kind]


def _end(row: list) -> float:
    return row[T1] if row[T1] is not None else row[T0]


def epoch_phase_table(obs_doc: Optional[Dict[str, Any]]
                      ) -> List[Dict[str, Any]]:
    """Build the recovery rows of one trial's ``obs`` document.

    Returns a list of dicts (one per relaunch, in time order) with the
    phase boundaries and durations; empty when observation was off or
    the run had no recoveries.
    """
    relaunches = sorted(_rows_of(obs_doc, "relaunch"), key=lambda r: r[T0])
    if not relaunches:
        return []
    detects = _rows_of(obs_doc, "detect")
    restores = _rows_of(obs_doc, "restore")
    replays = _rows_of(obs_doc, "replay")
    catchups = _rows_of(obs_doc, "catchup")

    rows: List[Dict[str, Any]] = []
    for rel in relaunches:
        fields = rel[FIELDS] or {}
        b1 = rel[T0]                       # failure confirmed, relaunch begins
        b2 = _end(rel)                     # daemon re-registered
        # the detect span that ended exactly where this relaunch began;
        # superseded relaunches share a detect, so don't consume it
        det = None
        for d in detects:
            if d[T1] is not None and abs(d[T1] - b1) <= _EPS:
                det = d
                break
        b0 = det[T0] if det is not None else b1
        rows.append({
            "epoch": fields.get("epoch"),
            "rank": fields.get("rank"),
            "lane": rel[LANE],
            "suspected": bool((det[FIELDS] or {}).get("suspected")
                              ) if det is not None else False,
            "truncated": bool(fields.get("_truncated")),
            "_b": [b0, b1, b2, b2, b2],    # boundaries, extended below
            "catchup": None,
        })

    def _assign(spanrows: List[list], boundary_index: int) -> None:
        # a phase span belongs to the latest recovery already underway
        for srow in sorted(spanrows, key=lambda r: r[T0]):
            owner = None
            for row in rows:
                if row["_b"][1] <= srow[T0] + _EPS:
                    owner = row
            if owner is None:
                continue
            end = _end(srow)
            b = owner["_b"]
            if end > b[boundary_index]:
                for i in range(boundary_index, len(b)):
                    b[i] = max(b[i], end)

    _assign(restores, 3)   # b3: restore complete (replay may begin)
    _assign(replays, 4)    # b4: replay drained
    for crow in sorted(catchups, key=lambda r: r[T0]):
        owner = None
        for row in rows:
            if row["_b"][1] <= crow[T0] + _EPS:
                owner = row
        if owner is not None:
            prev = owner["catchup"] or 0.0
            owner["catchup"] = max(prev, _end(crow) - crow[T0])

    for row in rows:
        b0, b1, b2, b3, b4 = row.pop("_b")
        row.update({
            "t_fault": b0,
            "detect": b1 - b0,
            "relaunch": b2 - b1,
            "restore": b3 - b2,
            "replay": b4 - b3,
            "recovery": b4 - b0,
        })
    return rows


_COLS = ("epoch", "rank", "lane", "t_fault", "detect", "relaunch",
         "restore", "replay", "catchup", "recovery")


def _fmt(row: Dict[str, Any], col: str) -> str:
    v = row.get(col)
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)


def render_phase_table(obs_doc: Optional[Dict[str, Any]]) -> str:
    """ASCII phase table of one trial (``repro timeline --phases``)."""
    rows = epoch_phase_table(obs_doc)
    if not rows:
        return "no recovery spans recorded (fault-free run or observation off)"
    cells = [[_fmt(row, col) for col in _COLS] for row in rows]
    widths = [max(len(col), *(len(c[i]) for c in cells))
              for i, col in enumerate(_COLS)]
    lines = ["  ".join(col.rjust(w) for col, w in zip(_COLS, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for crow, row in zip(cells, rows):
        line = "  ".join(c.rjust(w) for c, w in zip(crow, widths))
        marks = []
        if row["suspected"]:
            marks.append("suspected")
        if row["truncated"]:
            marks.append("truncated")
        if marks:
            line += "  (" + ", ".join(marks) + ")"
        lines.append(line)
    return "\n".join(lines)
