"""Application-level message representation and matching."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: wildcard for source/tag matching (MPI_ANY_SOURCE / MPI_ANY_TAG)
ANY = -1


@dataclass(frozen=True)
class AppMessage:
    """An MPI point-to-point message as seen by endpoints.

    ``size`` is the simulated payload size in bytes — it only affects
    network transfer time, not content.
    """

    src: int
    dst: int
    tag: int
    payload: Any
    size: int = 1024

    def matches(self, src: int, tag: int) -> bool:
        """MPI receive matching with :data:`ANY` wildcards."""
        return (src == ANY or src == self.src) and (tag == ANY or tag == self.tag)

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"AppMessage({self.src}->{self.dst} tag={self.tag} size={self.size})"
