"""Restartable collective operations built on point-to-point.

Every collective records its progress inside the endpoint ``state``
under a caller-supplied key, so a process image snapped at *any*
instant resumes the collective without losing or duplicating
contributions.  The invariant relied upon: in the discrete-event
kernel, everything between two ``yield`` points is atomic, so a state
update performed in the same step as the send/recv it describes can
never be separated from it by a checkpoint.

These are the flat (linear) algorithms of mpich-1's ch_p4 device for
small communicators — adequate for ≤64 ranks and simple to make
restartable.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.mpi.message import ANY

TAG_BARRIER_IN = 9001
TAG_BARRIER_OUT = 9002
TAG_REDUCE = 9003
TAG_RESULT = 9004
TAG_BCAST = 9005
TAG_GATHER = 9006
TAG_RING = 9007


def _sub(ep, key: str) -> dict:
    return ep.state.setdefault(key, {"stage": "init"})


def barrier(ep, key: str):
    """All ranks synchronize: gather-to-0 then release broadcast."""
    st = _sub(ep, key)
    if st["stage"] == "done":
        return
    if ep.rank == 0:
        if st["stage"] == "init":
            st["got"] = 0
            st["stage"] = "collect"
        while st["stage"] == "collect":
            if st["got"] == ep.size - 1:
                for dst in range(1, ep.size):
                    ep.send(dst, TAG_BARRIER_OUT, None, size=64)
                st["stage"] = "done"
                break
            yield from ep.recv(ANY, TAG_BARRIER_IN)
            st["got"] += 1
    else:
        if st["stage"] == "init":
            ep.send(0, TAG_BARRIER_IN, None, size=64)
            st["stage"] = "wait"
        if st["stage"] == "wait":
            yield from ep.recv(0, TAG_BARRIER_OUT)
            st["stage"] = "done"


def reduce_bcast(ep, key: str, value: Any,
                 op: Callable[[List[Any]], Any] = sum,
                 size: int = 256):
    """Allreduce: reduce ``value`` across ranks with ``op`` and return
    the result on every rank (gather-to-0 + broadcast).

    ``value`` must be derivable from checkpointed state at the call
    site, since a rolled-back rank will call again with the same value.
    """
    st = _sub(ep, key)
    if st["stage"] == "done":
        return st["result"]
    if ep.rank == 0:
        if st["stage"] == "init":
            st["acc"] = [value]
            st["stage"] = "collect"
        while st["stage"] == "collect":
            if len(st["acc"]) == ep.size:
                st["result"] = op(st["acc"])
                for dst in range(1, ep.size):
                    ep.send(dst, TAG_RESULT, st["result"], size=size)
                st["stage"] = "done"
                break
            msg = yield from ep.recv(ANY, TAG_REDUCE)
            st["acc"].append(msg.payload)
        return st["result"]
    else:
        if st["stage"] == "init":
            ep.send(0, TAG_REDUCE, value, size=size)
            st["stage"] = "wait"
        if st["stage"] == "wait":
            msg = yield from ep.recv(0, TAG_RESULT)
            st["result"] = msg.payload
            st["stage"] = "done"
        return st["result"]


def bcast(ep, key: str, value: Any = None, root: int = 0, size: int = 256):
    """Broadcast ``value`` from ``root``; returns it on every rank."""
    st = _sub(ep, key)
    if st["stage"] == "done":
        return st["result"]
    if ep.rank == root:
        for dst in range(ep.size):
            if dst != root:
                ep.send(dst, TAG_BCAST, value, size=size)
        st["result"] = value
        st["stage"] = "done"
        return value
    msg = yield from ep.recv(root, TAG_BCAST)
    st["result"] = msg.payload
    st["stage"] = "done"
    return msg.payload


def gather_to_root(ep, key: str, value: Any, root: int = 0, size: int = 256):
    """Gather one value per rank at ``root``.

    Returns the rank-indexed list at root, ``None`` elsewhere.
    """
    st = _sub(ep, key)
    if st["stage"] == "done":
        return st.get("result")
    if ep.rank == root:
        if st["stage"] == "init":
            st["parts"] = {root: value}
            st["stage"] = "collect"
        while st["stage"] == "collect":
            if len(st["parts"]) == ep.size:
                st["result"] = [st["parts"][r] for r in range(ep.size)]
                st["stage"] = "done"
                break
            msg = yield from ep.recv(ANY, TAG_GATHER)
            st["parts"][msg.src] = msg.payload
        return st["result"]
    else:
        ep.send(root, TAG_GATHER, value, size=size)
        st["stage"] = "done"
        return None


def ring_exchange(ep, key: str, value: Any, size: int = 1024):
    """Send to (rank+1) % size, receive from (rank-1) % size.

    Returns the received payload; a building block for the ring demo
    workload and a compact integration test of the matching logic.
    """
    st = _sub(ep, key)
    if st["stage"] == "done":
        return st["result"]
    right = (ep.rank + 1) % ep.size
    left = (ep.rank - 1) % ep.size
    if st["stage"] == "init":
        ep.send(right, TAG_RING, value, size=size)
        st["stage"] = "wait"
    msg = yield from ep.recv(left, TAG_RING)
    st["result"] = msg.payload
    st["stage"] = "done"
    return msg.payload
