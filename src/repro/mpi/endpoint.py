"""The MPI endpoint: what application code programs against.

One :class:`MpiEndpoint` lives inside each MPI computation thread.  It
delegates actual communication to a :class:`Transport` (the MPICH-V
communication daemon, or a direct test transport) and keeps the
restartability bookkeeping described in :mod:`repro.mpi`.
"""

from __future__ import annotations

from typing import Any, List, Protocol

from repro.mpi.message import ANY, AppMessage
from repro.obs.causal import stamp

#: key under which the endpoint stores unmatched-but-consumed messages
UNMATCHED_KEY = "_mpi_unmatched"


class Transport(Protocol):
    """What an endpoint needs from the communication layer.

    Delivery contract (checkpoint-safety): the transport must place an
    inbound message **directly into the endpoint's state buffer**
    (``state[UNMATCHED_KEY]``) and then signal the doorbell returned by
    :meth:`app_inbox_get`.  A message is therefore *always* either
    un-delivered (still the transport's channel state) or inside the
    checkpointable state — there is no instant at which it exists only
    in a wakeup event, which is what makes snapshots race-free.
    """

    def app_send(self, msg: AppMessage) -> None:
        """Eager-send ``msg`` towards its destination rank."""

    def app_inbox_get(self):
        """Return a doorbell Event: 'the state buffer may have grown'."""

    def app_done(self) -> None:
        """Signal MPI_Finalize reached by the local rank."""


class LocalDelivery:
    """Reference implementation of the delivery contract.

    Owns the doorbell store and performs state-buffer appends; the
    MPICH-V daemon and the in-process test transports both reuse it.
    """

    def __init__(self, engine, state: dict, name: str = "inbox"):
        from repro.simkernel.store import Store
        self.state = state
        state.setdefault(UNMATCHED_KEY, [])
        self.bell = Store(engine, name=name)

    def deliver(self, msg: AppMessage) -> None:
        """Atomically buffer ``msg`` in checkpointable state + ring."""
        self.state[UNMATCHED_KEY].append(msg)
        if not self.bell.closed:
            self.bell.put(None)

    def rebind(self, state: dict) -> None:
        """Point deliveries at a restored state dict (rollback)."""
        self.state = state
        state.setdefault(UNMATCHED_KEY, [])

    def doorbell(self):
        return self.bell.get()


class MpiEndpoint:
    """Rank-local MPI interface.

    Parameters
    ----------
    rank, size:
        This process's rank and the communicator size.
    state:
        The checkpointable application state dict.  The endpoint stores
        its own unmatched-message buffer under :data:`UNMATCHED_KEY` so
        a snapshot always contains every consumed-but-unprocessed
        message.
    transport:
        The communication daemon binding.
    engine:
        The simulation engine (for ``compute`` timeouts).
    """

    def __init__(self, rank: int, size: int, state: dict, transport: Transport, engine):
        self.rank = rank
        self.size = size
        self.state = state
        self.transport = transport
        self.engine = engine
        state.setdefault(UNMATCHED_KEY, [])
        #: counters for tests / traces
        self.sent_count = 0
        self.recv_count = 0

    # -- point to point -------------------------------------------------------
    def send(self, dst: int, tag: int, payload: Any, size: int = 1024) -> None:
        """Standard-mode eager send (buffered, non-blocking).

        MPICH's eager protocol never blocks the sender for the message
        sizes BT exchanges, so modelling send as asynchronous is
        faithful for this workload.
        """
        if not (0 <= dst < self.size):
            raise ValueError(f"send to invalid rank {dst}")
        msg = AppMessage(self.rank, dst, tag, payload, size)
        # root of a causal trace: every hop this message takes (daemon
        # envelope, channel-memory relay, logged replay) extends it
        stamp(self.engine, msg, f"r{self.rank}")
        self.transport.app_send(msg)
        self.sent_count += 1

    def recv(self, src: int = ANY, tag: int = ANY):
        """Blocking receive; use as ``msg = yield from ep.recv(...)``.

        Returns the matching :class:`AppMessage`.  Messages live in the
        state buffer from the moment of delivery (see
        :class:`Transport`), so a snapshot at any instant sees every
        delivered-but-unprocessed message; the doorbell the endpoint
        waits on carries no payload.
        """
        while True:
            buf: List[AppMessage] = self.state[UNMATCHED_KEY]
            for i, queued in enumerate(buf):
                if queued.matches(src, tag):
                    del buf[i]
                    self.recv_count += 1
                    # NOTE: no yield between unbuffering and returning —
                    # the caller updates its state in the same step.
                    return queued
            yield self.transport.app_inbox_get()

    def sendrecv(self, dst: int, send_tag: int, payload: Any,
                 src: int, recv_tag: int, size: int = 1024):
        """Combined send+recv, the BT sweep staple."""
        self.send(dst, send_tag, payload, size=size)
        msg = yield from self.recv(src, recv_tag)
        return msg

    # -- computation ------------------------------------------------------------
    def compute(self, seconds: float):
        """Burn ``seconds`` of simulated CPU time."""
        if seconds < 0:
            raise ValueError("negative compute time")
        if seconds > 0:
            yield self.engine.timeout(seconds)

    # -- lifecycle -----------------------------------------------------------------
    def finalize(self) -> None:
        """MPI_Finalize: report completion to the runtime."""
        self.transport.app_done()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MpiEndpoint rank={self.rank}/{self.size}>"
