"""A mini-MPI over the simulated cluster.

This plays the role mpich-1.2.7 plays in the paper: the programming
interface the application (NAS BT) is written against.  Communication
is relayed through a pluggable *transport* — in the fault-tolerant
stack the transport is the MPICH-V communication daemon
(:mod:`repro.mpichv.vdaemon`), mirroring the paper's split of every
MPI node into a computation process and a communication daemon.

Restartability contract
-----------------------
Checkpointing captures the endpoint's ``state`` dict (plus the
channel-state message logs kept by the daemon).  Applications must
therefore keep *all* computation progress inside ``state`` and update
it atomically between yields — i.e. immediately after a ``recv``
returns and before the next ``yield``.  The helpers in
:mod:`repro.mpi.collectives` follow the same contract, making the
collectives resumable from any snapshot instant.
"""

from repro.mpi.message import ANY, AppMessage
from repro.mpi.endpoint import MpiEndpoint, Transport
from repro.mpi.collectives import (
    barrier,
    bcast,
    gather_to_root,
    reduce_bcast,
    ring_exchange,
)

__all__ = [
    "ANY",
    "AppMessage",
    "MpiEndpoint",
    "Transport",
    "barrier",
    "bcast",
    "gather_to_root",
    "reduce_bcast",
    "ring_exchange",
]
